// The `fcm serve` wire protocol.
//
// One-shot `fcm_tool` runs rebuild graphs, caches, and plans from scratch
// on every invocation; the resident daemon answers the same queries over a
// socket while keeping the model fleet, the separation/quotient caches, and
// the `fcm::exec` pool warm. The protocol is deliberately tiny — a
// length-prefixed binary framing with text payloads — so that clients in
// any language are a few dozen lines and the robustness surface (what a
// malformed peer can do to the server) stays auditable:
//
//   request:   u32 length | u16 opcode | payload bytes
//   response:  u32 length | u16 status | payload bytes
//
// All integers are little-endian. `length` counts the opcode/status word
// plus the payload, so the smallest legal frame is length == 2. Frames
// whose declared length is shorter than the opcode word or longer than the
// decoder's cap are protocol errors: the server answers with a kBadFrame
// response and closes, because the stream offset can no longer be trusted.
// Everything above the framing (an unknown opcode, a malformed query
// parameter) is a *request* error: the server answers with a non-kOk status
// and keeps the connection usable.
//
// Request payloads are ASCII "key=value" pairs separated by single spaces
// (e.g. "hw=6 trials=2000"); response payloads are exactly the bytes the
// equivalent one-shot `fcm_tool` command prints. Byte-identity between the
// serve path and the one-shot path is a hard contract enforced by
// tests/serve/differential_test.cpp and by CI.
//
// One payload key is transport-level rather than query-level: a request may
// carry "deadline_ms=N" anywhere in its payload. The server strips the
// token before the query engine (and before the response memo key, so
// deadline-carrying requests stay byte-identical to deadline-free ones) and
// answers kDeadlineExceeded without evaluating when the deadline passes
// while the request waits for a worker. kPing echoes the stripped payload.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fcm::serve::protocol {

/// Hard cap on `length` a decoder accepts by default (1 MiB). Queries are
/// short key=value strings; anything near this cap is a corrupt or hostile
/// peer, not a real request.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Bytes of framing before the payload: u32 length + u16 opcode/status.
inline constexpr std::size_t kHeaderBytes = 6;

/// Request opcodes. Values are wire format — never renumber.
enum class Opcode : std::uint16_t {
  kMapping = 1,    ///< integration plan report (== `fcm_tool plan`)
  kInfluence = 2,  ///< influence graph + roles (== `fcm_tool influence`)
  kDepend = 3,     ///< Monte Carlo dependability (== `fcm_tool depend`)
  kReplan = 4,     ///< graceful degradation (== `fcm_tool replan`)
  kPing = 5,       ///< echo; liveness probe for clients and CI
  kMetrics = 6,    ///< fcm::obs registry snapshot as JSON
  kAdversary = 7,  ///< adversarial worst-case fault schedule search
  kRareEvent = 8,  ///< importance-sampled rare-event survival estimate
};

/// Response status codes. Values are wire format — never renumber; new
/// statuses are appended. The terminal-outcome ledger (DESIGN.md §15)
/// partitions every accepted request into exactly one of: kOk, a
/// request-level error (2/3/4), kShuttingDown, kOverloaded,
/// kDeadlineExceeded, or a connection-level failure the peer observes
/// directly.
enum class Status : std::uint16_t {
  kOk = 0,
  kBadFrame = 1,       ///< framing violation; connection is closed after it
  kUnknownOpcode = 2,  ///< connection stays usable
  kBadRequest = 3,     ///< malformed query parameters; connection usable
  kServerError = 4,    ///< handler threw; connection usable
  kShuttingDown = 5,   ///< server is draining; connection closes after it
  kOverloaded = 6,     ///< admission control shed the request (or, on a
                       ///< fresh connection, the connection cap was hit and
                       ///< the connection closes after it); safe to retry —
                       ///< every query is a pure function of its payload
  kDeadlineExceeded = 7,  ///< the request's deadline_ms passed before a
                          ///< worker could start it; never evaluated
};

/// Short stable name ("mapping", "depend", ...) or "op<N>" for unknown
/// values; `parse_opcode` inverts it (returns false on an unknown name).
[[nodiscard]] std::string opcode_name(Opcode opcode);
[[nodiscard]] bool parse_opcode(std::string_view name, Opcode& out);
[[nodiscard]] const char* status_name(Status status) noexcept;

/// One decoded frame. `code` is the opcode of a request or the status of a
/// response, depending on direction.
struct Frame {
  std::uint16_t code = 0;
  std::string payload;
};

/// Serializes one frame (header + payload) into wire bytes.
[[nodiscard]] std::string encode_frame(std::uint16_t code,
                                       std::string_view payload);
inline std::string encode_request(Opcode opcode, std::string_view payload) {
  return encode_frame(static_cast<std::uint16_t>(opcode), payload);
}
inline std::string encode_response(Status status, std::string_view payload) {
  return encode_frame(static_cast<std::uint16_t>(status), payload);
}

/// Incremental frame parser. Feed arbitrary byte chunks exactly as read
/// from the socket — frames split across reads and frames coalesced into
/// one read both decode correctly. A framing violation (declared length
/// < 2 or > the cap) poisons the decoder: every later `next` returns
/// kError, because a stream whose framing lied once has no recoverable
/// offset.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Result : std::uint8_t {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< `out` holds the next frame
    kError,     ///< framing violation; see error()
  };

  /// Appends raw bytes from the peer.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame, if any.
  Result next(Frame& out);

  /// One-line description of the framing violation after kError.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed (diagnostic).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::uint32_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already decoded
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace fcm::serve::protocol
