#include "dependability/sensitivity.h"

#include "common/error.h"

namespace fcm::dependability {

std::vector<SurvivalPoint> survival_curve(
    const mapping::SwGraph& sw, const mapping::ClusteringResult& clustering,
    const mapping::Assignment& assignment, const mapping::HwGraph& hw,
    const SweepOptions& options) {
  FCM_REQUIRE(!options.hw_failure_points.empty(),
              "the sweep needs at least one sample point");
  std::vector<SurvivalPoint> curve;
  curve.reserve(options.hw_failure_points.size());
  for (const double q : options.hw_failure_points) {
    MissionModel mission = options.mission;
    mission.hw_failure = Probability(q);
    const DependabilityReport report = evaluate_mapping(
        sw, clustering, assignment, hw, mission, options.seed);
    SurvivalPoint point;
    point.hw_failure = q;
    point.system_survival = report.system_survival;
    point.critical_survival = report.critical_survival;
    point.expected_criticality_loss = report.expected_criticality_loss;
    curve.push_back(point);
  }
  return curve;
}

double crossover_point(const std::vector<SurvivalPoint>& a,
                       const std::vector<SurvivalPoint>& b) {
  FCM_REQUIRE(a.size() == b.size() && !a.empty(),
              "curves must sample the same points");
  for (std::size_t i = 0; i < a.size(); ++i) {
    FCM_REQUIRE(a[i].hw_failure == b[i].hw_failure,
                "curves must sample the same hw_failure values");
  }
  // Find the first sign change of (a - b) on critical survival; touching
  // zero counts as a crossing at the touch point.
  double prev_delta = a[0].critical_survival - b[0].critical_survival;
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double delta = a[i].critical_survival - b[i].critical_survival;
    const bool crossed = (prev_delta > 0.0 && delta <= 0.0) ||
                         (prev_delta < 0.0 && delta >= 0.0);
    if (crossed) {
      // Linear interpolation of the zero crossing in q (t = 1 when the
      // curves touch exactly at the right sample).
      const double q0 = a[i - 1].hw_failure;
      const double q1 = a[i].hw_failure;
      const double t = prev_delta / (prev_delta - delta);
      return q0 + t * (q1 - q0);
    }
    prev_delta = delta;
  }
  return -1.0;
}

}  // namespace fcm::dependability
