#include "dependability/tradeoff.h"

#include "common/error.h"

namespace fcm::dependability {

using mapping::HwGraph;
using mapping::IntegrationPlanner;
using mapping::Plan;

int TradeoffAnalysis::integration_floor() const noexcept {
  for (const IntegrationLevel& level : levels) {
    if (level.feasible) return level.hw_nodes;
  }
  return -1;
}

int TradeoffAnalysis::best_survival_level() const noexcept {
  int best = -1;
  double best_survival = -1.0;
  for (const IntegrationLevel& level : levels) {
    if (level.feasible && level.system_survival > best_survival) {
      best_survival = level.system_survival;
      best = level.hw_nodes;
    }
  }
  return best;
}

int TradeoffAnalysis::best_quality_level() const noexcept {
  int best = -1;
  double best_score = -1.0;
  for (const IntegrationLevel& level : levels) {
    if (level.feasible && level.quality_score > best_score) {
      best_score = level.quality_score;
      best = level.hw_nodes;
    }
  }
  return best;
}

TradeoffAnalysis sweep_integration_levels(
    const core::FcmHierarchy& hierarchy,
    const core::InfluenceModel& influence,
    const std::vector<FcmId>& processes, const TradeoffOptions& options) {
  FCM_REQUIRE(options.min_nodes >= 1 &&
                  options.min_nodes <= options.max_nodes,
              "node range must be non-empty and positive");
  TradeoffAnalysis analysis;
  for (int nodes = options.min_nodes; nodes <= options.max_nodes; ++nodes) {
    IntegrationLevel level;
    level.hw_nodes = nodes;
    const HwGraph hw = HwGraph::complete(nodes);
    try {
      IntegrationPlanner planner(hierarchy, influence, processes, hw);
      const Plan plan = planner.best_plan(options.approach);
      level.feasible = true;
      level.heuristic = plan.heuristic;
      level.quality_score = plan.quality.score();
      level.cross_node_influence = plan.quality.cross_node_influence;
      level.max_colocated_criticality =
          plan.quality.max_colocated_criticality;
      const DependabilityReport report =
          evaluate_mapping(planner.sw_graph(),
                                          plan.clustering, plan.assignment,
                                          hw, options.mission, options.seed);
      level.system_survival = report.system_survival;
      level.expected_criticality_loss = report.expected_criticality_loss;
    } catch (const FcmError&) {
      level.feasible = false;
    }
    analysis.levels.push_back(level);
  }
  return analysis;
}

}  // namespace fcm::dependability
