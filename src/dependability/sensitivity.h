// Sensitivity analysis: survival as a function of component failure rates.
//
// The paper's "goodness" of a mapping is not one number — it depends on the
// (unknown) per-node failure probability. `survival_curve` sweeps the HW
// failure rate and reports the delivered survival metrics at each point, so
// two candidate mappings can be compared across the whole operating regime
// (mappings often cross: criticality dispersion wins at high q, containment
// at low q).
#pragma once

#include <vector>

#include "dependability/montecarlo.h"

namespace fcm::dependability {

/// One sample point of a survival curve.
struct SurvivalPoint {
  double hw_failure = 0.0;
  double system_survival = 0.0;
  double critical_survival = 0.0;
  double expected_criticality_loss = 0.0;
};

/// Sweep parameters.
struct SweepOptions {
  /// HW failure probabilities to sample (ascending recommended).
  std::vector<double> hw_failure_points{0.01, 0.02, 0.05, 0.1, 0.2, 0.4};
  /// Base mission model; its hw_failure is overridden per point. The
  /// threads setting flows through, so sweeps parallelize per point while
  /// staying deterministic.
  MissionModel mission;
  std::uint64_t seed = 1;
};

/// Evaluates the mapping at each sweep point.
std::vector<SurvivalPoint> survival_curve(
    const mapping::SwGraph& sw, const mapping::ClusteringResult& clustering,
    const mapping::Assignment& assignment, const mapping::HwGraph& hw,
    const SweepOptions& options = {});

/// The q value (linear interpolation between sample points) at which
/// `metric_a` first drops below `metric_b` — the crossover between two
/// curves; returns a negative value when they never cross. Curves must
/// sample the same hw_failure points.
double crossover_point(const std::vector<SurvivalPoint>& a,
                       const std::vector<SurvivalPoint>& b);

}  // namespace fcm::dependability
