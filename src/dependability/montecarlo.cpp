#include "dependability/montecarlo.h"

#include <algorithm>
#include <map>

#include "common/batch_rng.h"
#include "common/error.h"
#include "common/ksum.h"
#include "common/rng.h"
#include "common/simd.h"
#include "exec/executor.h"
#include "obs/obs.h"

namespace fcm::dependability {

namespace {

// Replication semantics of one origin process, precomputed once per
// evaluation and shared read-only by every worker.
struct ProcessInfo {
  FcmId origin;
  std::vector<graph::NodeIndex> replicas;
  int replication = 1;
  core::Criticality criticality = 0;
};

// Tally of one fixed-size trial block. Counts are exact integers; the loss
// sum is compensated within the block in trial order, so folding blocks in
// index order reproduces one canonical floating-point result no matter
// which thread ran which block.
struct BlockTally {
  std::vector<std::uint32_t> survived;
  std::uint32_t all_ok = 0;
  std::uint32_t critical_ok = 0;
  double criticality_loss = 0.0;
  // Observability: fixed-point sweeps taken by the propagation loop, and
  // edges actually sampled. Tallied per block so the registry totals fold
  // deterministically like every other block quantity.
  std::uint64_t propagation_sweeps = 0;
  std::uint64_t edges_sampled = 0;
};

// Reusable per-worker scratch, allocated once per thread instead of per
// trial (the propagation edge-state vector dominated allocation cost in the
// single-threaded engine). SoA layout: byte flags instead of vector<bool>
// so the batched comparison kernel can write failure masks directly.
struct WorkerScratch {
  std::vector<std::uint8_t> hw_failed;
  std::vector<std::uint8_t> module_failed;
  std::vector<std::int8_t> edge_state;  // -1 unsampled, 0 no, 1 yes
};

void run_block(const mapping::SwGraph& sw,
               const mapping::ClusteringResult& clustering,
               const mapping::Assignment& assignment,
               const mapping::HwGraph& hw, const MissionModel& mission,
               const std::vector<ProcessInfo>& processes,
               core::Criticality critical_threshold, Rng rng,
               std::uint32_t first_trial, std::uint32_t last_trial,
               WorkerScratch& scratch, BlockTally& tally) {
  tally.survived.assign(processes.size(), 0);
  NeumaierSum loss_sum;
  const auto& edges = sw.influence_graph().edges();

  // BatchRng continues rng's exact stream through the SIMD backends:
  // uniforms are generated in batches, consumed in the same order and under
  // the same conditions as before, so every sampled value is bit-identical
  // to the serial engine for every backend and thread count.
  BatchRng batch(rng);
  const std::size_t hw_count = hw.node_count();

  for (std::uint32_t trial = first_trial; trial < last_trial; ++trial) {
    // 1. HW node failures: one fused SoA lottery batch per trial (identical
    // flags to fill + less_than, without materializing the uniforms).
    batch.bernoulli(mission.hw_failure.value(), scratch.hw_failed.data(),
                    hw_count);
    // 2. Module failures: host HW down, or intrinsic SW fault. The
    // short-circuit is load-bearing: a module on a dead host draws no SW
    // fault lottery, exactly as before.
    for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
      const std::uint32_t cluster = clustering.partition.cluster_of[v];
      const HwNodeId host = assignment.hw_of[cluster];
      scratch.module_failed[v] = static_cast<std::uint8_t>(
          scratch.hw_failed[host.value()] != 0 ||
          batch.chance(mission.sw_fault));
    }
    // 3. Propagation along influence edges to a fixed point. Each edge is
    // sampled at most once per trial (a module corrupts a neighbor or not).
    if (mission.propagate) {
      std::fill(scratch.edge_state.begin(), scratch.edge_state.end(),
                static_cast<std::int8_t>(-1));
      bool changed = true;
      while (changed) {
        changed = false;
        ++tally.propagation_sweeps;
        for (std::size_t e = 0; e < edges.size(); ++e) {
          const graph::Edge& edge = edges[e];
          if (!scratch.module_failed[edge.from] ||
              scratch.module_failed[edge.to]) {
            continue;
          }
          if (edge.weight <= 0.0) continue;  // replica links don't propagate
          if (scratch.edge_state[e] < 0) {
            scratch.edge_state[e] =
                batch.chance(Probability::clamped(edge.weight)) ? 1 : 0;
            ++tally.edges_sampled;
          }
          if (scratch.edge_state[e] == 1) {
            scratch.module_failed[edge.to] = 1;
            changed = true;
          }
        }
      }
    }
    // 4. FT semantics per process.
    bool everything = true, critical = true;
    double lost = 0.0;
    for (std::size_t p = 0; p < processes.size(); ++p) {
      const ProcessInfo& info = processes[p];
      int ok = 0;
      for (const graph::NodeIndex v : info.replicas) {
        if (!scratch.module_failed[v]) ++ok;
      }
      bool delivered = false;
      if (info.replication <= 2) {
        delivered = ok >= 1;  // simplex / fail-stop duplex
      } else {
        const int voters = static_cast<int>(info.replicas.size());
        delivered = 2 * ok > voters;  // majority vote
      }
      if (delivered) {
        ++tally.survived[p];
      } else {
        everything = false;
        lost += info.criticality;
        if (info.criticality >= critical_threshold) critical = false;
      }
    }
    if (everything) ++tally.all_ok;
    if (critical) ++tally.critical_ok;
    loss_sum.add(lost);
  }
  tally.criticality_loss = loss_sum.value();
}

}  // namespace

DependabilityReport evaluate_mapping(
    const mapping::SwGraph& sw, const mapping::ClusteringResult& clustering,
    const mapping::Assignment& assignment, const mapping::HwGraph& hw,
    const MissionModel& mission, std::uint64_t seed,
    core::Criticality critical_threshold) {
  FCM_REQUIRE(mission.trials > 0, "at least one trial required");
  FCM_REQUIRE(mission.trials_per_block > 0,
              "trial block size must be positive");
  FCM_REQUIRE(assignment.hw_of.size() == clustering.partition.cluster_count,
              "assignment does not cover every cluster");
  FCM_OBS_SPAN("mc.evaluate");

  // Group SW nodes by their origin process; record replication semantics.
  std::map<FcmId, std::size_t> index_of;
  std::vector<ProcessInfo> processes;
  for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
    const mapping::SwNode& node = sw.node(v);
    auto [it, inserted] = index_of.try_emplace(node.origin, processes.size());
    if (inserted) {
      ProcessInfo info;
      info.origin = node.origin;
      info.replication = node.attributes.replication;
      info.criticality = node.attributes.criticality;
      processes.push_back(std::move(info));
    }
    processes[it->second].replicas.push_back(v);
  }

  const std::uint32_t block_size = mission.trials_per_block;
  const std::uint32_t block_count =
      (mission.trials + block_size - 1) / block_size;
  const std::uint32_t threads =
      exec::resolve_threads(mission.threads, block_count);

  // The master generator exists only as the substream root: block b always
  // samples from substream(b), a pure function of (seed, b), so the sample
  // path of every block — and therefore every estimate — is invariant under
  // the thread count and the block execution order.
  const Rng master(seed);
  std::vector<BlockTally> tallies(block_count);
  std::vector<WorkerScratch> scratch(threads);
  for (WorkerScratch& s : scratch) {
    s.hw_failed.resize(hw.node_count());
    s.module_failed.resize(sw.node_count());
    s.edge_state.resize(sw.influence_graph().edge_count());
  }
  exec::parallel_for_blocks(
      block_count, threads, [&](std::uint64_t b, std::uint32_t lane) {
        const std::uint32_t block = static_cast<std::uint32_t>(b);
        const std::uint32_t first = block * block_size;
        const std::uint32_t last =
            std::min(mission.trials, first + block_size);
        FCM_OBS_SPAN("mc.block", block);
        run_block(sw, clustering, assignment, hw, mission, processes,
                  critical_threshold, master.substream(block), first, last,
                  scratch[lane], tallies[block]);
      });

  // Deterministic reduction: integer counts commute; the loss totals fold
  // in block order through one more compensated sum.
  std::vector<std::uint64_t> survived(processes.size(), 0);
  std::uint64_t all_ok = 0, critical_ok = 0;
  std::uint64_t propagation_sweeps = 0, edges_sampled = 0;
  NeumaierSum loss_sum;
  for (const BlockTally& tally : tallies) {
    for (std::size_t p = 0; p < processes.size(); ++p) {
      survived[p] += tally.survived[p];
    }
    all_ok += tally.all_ok;
    critical_ok += tally.critical_ok;
    propagation_sweeps += tally.propagation_sweeps;
    edges_sampled += tally.edges_sampled;
    loss_sum.add(tally.criticality_loss);
  }

  // Work counters fold from the per-block tallies, so — like the estimates
  // themselves — the registry totals are identical for every thread count.
  FCM_OBS_COUNT("mc.evaluations", 1);
  FCM_OBS_COUNT("mc.trials", mission.trials);
  FCM_OBS_COUNT("mc.blocks", block_count);
  FCM_OBS_COUNT("mc.propagation_sweeps", propagation_sweeps);
  FCM_OBS_COUNT("mc.edges_sampled", edges_sampled);
  FCM_OBS_GAUGE("mc.threads", static_cast<double>(threads));

  DependabilityReport report;
  report.trials = mission.trials;
  report.threads_used = threads;
  report.blocks = block_count;
  report.process_survival.resize(processes.size());
  for (std::size_t p = 0; p < processes.size(); ++p) {
    report.process_survival[p] =
        static_cast<double>(survived[p]) / mission.trials;
  }
  report.system_survival = static_cast<double>(all_ok) / mission.trials;
  report.critical_survival =
      static_cast<double>(critical_ok) / mission.trials;
  report.expected_criticality_loss = loss_sum.value() / mission.trials;
  return report;
}

}  // namespace fcm::dependability
