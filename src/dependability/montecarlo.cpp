#include "dependability/montecarlo.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/rng.h"

namespace fcm::dependability {

DependabilityReport evaluate_mapping(
    const mapping::SwGraph& sw, const mapping::ClusteringResult& clustering,
    const mapping::Assignment& assignment, const mapping::HwGraph& hw,
    const MissionModel& mission, std::uint64_t seed,
    core::Criticality critical_threshold) {
  FCM_REQUIRE(mission.trials > 0, "at least one trial required");
  FCM_REQUIRE(assignment.hw_of.size() == clustering.partition.cluster_count,
              "assignment does not cover every cluster");

  // Group SW nodes by their origin process; record replication semantics.
  struct ProcessInfo {
    FcmId origin;
    std::vector<graph::NodeIndex> replicas;
    int replication = 1;
    core::Criticality criticality = 0;
  };
  std::map<FcmId, std::size_t> index_of;
  std::vector<ProcessInfo> processes;
  for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
    const mapping::SwNode& node = sw.node(v);
    auto [it, inserted] =
        index_of.try_emplace(node.origin, processes.size());
    if (inserted) {
      ProcessInfo info;
      info.origin = node.origin;
      info.replication = node.attributes.replication;
      info.criticality = node.attributes.criticality;
      processes.push_back(std::move(info));
    }
    processes[it->second].replicas.push_back(v);
  }

  Rng rng(seed);
  std::vector<std::uint32_t> survived(processes.size(), 0);
  std::uint32_t all_ok = 0, critical_ok = 0;
  double criticality_loss_sum = 0.0;

  std::vector<bool> hw_failed(hw.node_count());
  std::vector<bool> module_failed(sw.node_count());

  for (std::uint32_t trial = 0; trial < mission.trials; ++trial) {
    // 1. HW node failures.
    for (std::size_t n = 0; n < hw.node_count(); ++n) {
      hw_failed[n] = rng.chance(mission.hw_failure);
    }
    // 2. Module failures: host HW down, or intrinsic SW fault.
    for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
      const std::uint32_t cluster = clustering.partition.cluster_of[v];
      const HwNodeId host = assignment.hw_of[cluster];
      module_failed[v] =
          hw_failed[host.value()] || rng.chance(mission.sw_fault);
    }
    // 3. Propagation along influence edges to a fixed point. Each edge is
    // sampled at most once per trial (a module corrupts a neighbor or not).
    if (mission.propagate) {
      bool changed = true;
      std::vector<std::int8_t> edge_state(sw.influence_graph().edge_count(),
                                          -1);  // -1 unsampled, 0 no, 1 yes
      while (changed) {
        changed = false;
        const auto& edges = sw.influence_graph().edges();
        for (std::size_t e = 0; e < edges.size(); ++e) {
          const graph::Edge& edge = edges[e];
          if (!module_failed[edge.from] || module_failed[edge.to]) continue;
          if (edge.weight <= 0.0) continue;  // replica links don't propagate
          if (edge_state[e] < 0) {
            edge_state[e] =
                rng.chance(Probability::clamped(edge.weight)) ? 1 : 0;
          }
          if (edge_state[e] == 1) {
            module_failed[edge.to] = true;
            changed = true;
          }
        }
      }
    }
    // 4. FT semantics per process.
    bool everything = true, critical = true;
    double lost = 0.0;
    for (std::size_t p = 0; p < processes.size(); ++p) {
      const ProcessInfo& info = processes[p];
      int ok = 0;
      for (const graph::NodeIndex v : info.replicas) {
        if (!module_failed[v]) ++ok;
      }
      bool delivered = false;
      if (info.replication <= 2) {
        delivered = ok >= 1;  // simplex / fail-stop duplex
      } else {
        const int voters = static_cast<int>(info.replicas.size());
        delivered = 2 * ok > voters;  // majority vote
      }
      if (delivered) {
        ++survived[p];
      } else {
        everything = false;
        lost += info.criticality;
        if (info.criticality >= critical_threshold) critical = false;
      }
    }
    if (everything) ++all_ok;
    if (critical) ++critical_ok;
    criticality_loss_sum += lost;
  }

  DependabilityReport report;
  report.trials = mission.trials;
  report.process_survival.resize(processes.size());
  for (std::size_t p = 0; p < processes.size(); ++p) {
    report.process_survival[p] =
        static_cast<double>(survived[p]) / mission.trials;
  }
  report.system_survival = static_cast<double>(all_ok) / mission.trials;
  report.critical_survival =
      static_cast<double>(critical_ok) / mission.trials;
  report.expected_criticality_loss = criticality_loss_sum / mission.trials;
  return report;
}

}  // namespace fcm::dependability
