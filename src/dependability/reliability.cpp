#include "dependability/reliability.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simd.h"

namespace fcm::dependability {

namespace {
void check_unit(double r) {
  FCM_REQUIRE(r >= 0.0 && r <= 1.0, "reliability must be in [0,1]");
}

double binomial_at_least(double p, int n, int k) {
  // P(X >= k), X ~ Binomial(n, p); n is tiny (replication degrees).
  double total = 0.0;
  for (int successes = k; successes <= n; ++successes) {
    double ways = 1.0;
    for (int i = 0; i < successes; ++i) {
      ways = ways * static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    total += ways * std::pow(p, successes) *
             std::pow(1.0 - p, n - successes);
  }
  return total;
}
}  // namespace

double tmr_reliability(double module_reliability) {
  check_unit(module_reliability);
  const double r = module_reliability;
  return 3.0 * r * r - 2.0 * r * r * r;
}

double nmr_reliability(double module_reliability, int n) {
  check_unit(module_reliability);
  FCM_REQUIRE(n >= 1 && n % 2 == 1, "NMR voting needs an odd module count");
  return binomial_at_least(module_reliability, n, n / 2 + 1);
}

double parallel_reliability(std::span<const double> module_reliabilities) {
  double all_fail = 1.0;
  for (const double r : module_reliabilities) {
    check_unit(r);
    all_fail *= 1.0 - r;
  }
  return 1.0 - all_fail;
}

double series_reliability(std::span<const double> module_reliabilities) {
  double all_work = 1.0;
  for (const double r : module_reliabilities) {
    check_unit(r);
    all_work *= r;
  }
  return all_work;
}

double replicated_process_reliability(double replica_reliability,
                                      int replication) {
  check_unit(replica_reliability);
  FCM_REQUIRE(replication >= 1, "replication degree must be positive");
  if (replication == 1) return replica_reliability;
  if (replication == 2) {
    const double both_fail =
        (1.0 - replica_reliability) * (1.0 - replica_reliability);
    return 1.0 - both_fail;
  }
  const int voters = replication % 2 == 1 ? replication : replication - 1;
  return nmr_reliability(replica_reliability, voters);
}

void replicated_process_reliability_batch(
    std::span<const double> replica_reliabilities, int replication,
    std::span<double> out) {
  FCM_REQUIRE(out.size() == replica_reliabilities.size(),
              "batched reliability output span must match the input size");
  FCM_REQUIRE(replication >= 1, "replication degree must be positive");
  for (const double r : replica_reliabilities) check_unit(r);
  if (replication == 1) {
    std::copy(replica_reliabilities.begin(), replica_reliabilities.end(),
              out.begin());
    return;
  }
  if (replication == 2) {
    simd::kernels().duplex_reliability(replica_reliabilities.data(),
                                       out.data(),
                                       replica_reliabilities.size());
    return;
  }
  // NMR keeps the scalar closed form in every backend: std::pow is correctly
  // rounded only to ~1 ulp, so re-deriving it vectorized could legally
  // change bits. Sharing one code path keeps the determinism contract.
  const int voters = replication % 2 == 1 ? replication : replication - 1;
  for (std::size_t i = 0; i < replica_reliabilities.size(); ++i) {
    out[i] = nmr_reliability(replica_reliabilities[i], voters);
  }
}

}  // namespace fcm::dependability
