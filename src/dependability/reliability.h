// Closed-form reliability of replicated configurations.
//
// The paper's FT attribute prescribes replication degrees (simplex, duplex,
// TMR); these closed forms are both the design-time predictions the
// framework quotes and the oracles the Monte Carlo evaluation is property-
// tested against.
#pragma once

#include <span>

namespace fcm::dependability {

/// Majority-voted triple modular redundancy: 3r² − 2r³.
double tmr_reliability(double module_reliability);

/// Majority-voted N-modular redundancy (n odd): P(> n/2 of n survive).
double nmr_reliability(double module_reliability, int n);

/// Fail-stop parallel redundancy: survives while at least one of the
/// modules works, 1 − Π(1 − r_i). Duplex (FT=2) uses this with two equal
/// modules.
double parallel_reliability(std::span<const double> module_reliabilities);

/// Series system: Π r_i (every module needed).
double series_reliability(std::span<const double> module_reliabilities);

/// Reliability delivered by one process given per-replica reliability and
/// the paper's FT semantics: 1 -> simplex, 2 -> fail-stop duplex,
/// >= 3 -> majority-voted NMR (even degrees round down to the nearest odd
/// voting quorum).
double replicated_process_reliability(double replica_reliability,
                                      int replication);

/// Batched replicated_process_reliability over a shared replication degree:
/// out[i] = replicated_process_reliability(replica_reliabilities[i],
/// replication), bit-identical to the scalar call on every backend. Simplex
/// copies; duplex goes through the vectorized 1 - (1-r)² kernel; NMR
/// (replication >= 3) stays on the shared scalar closed form, because its
/// std::pow terms are not guaranteed bitwise-stable under re-derivation.
/// Requires out.size() == replica_reliabilities.size().
void replicated_process_reliability_batch(
    std::span<const double> replica_reliabilities, int replication,
    std::span<double> out);

}  // namespace fcm::dependability
