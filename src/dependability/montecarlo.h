// Monte Carlo dependability evaluation of a complete mapping.
//
// This quantifies the "goodness of dependable system integration" the paper
// calls for: given a clustering + assignment, sample HW node failures and
// SW module faults, propagate faults along the influence graph, apply the
// FT semantics (simplex / fail-stop duplex / voted TMR), and report
// delivered survival probabilities and expected criticality loss. Different
// mappings of the same SW graph produce measurably different dependability
// — which is the entire point of the framework.
#pragma once

#include <cstdint>
#include <vector>

#include "common/probability.h"
#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/hw.h"

namespace fcm::dependability {

/// Mission parameters for the sampled failures.
struct MissionModel {
  /// Per-HW-node failure probability over the mission.
  Probability hw_failure;
  /// Per-SW-module intrinsic fault probability over the mission.
  Probability sw_fault = Probability::zero();
  /// Whether failed modules corrupt others along influence edges.
  bool propagate = true;
  /// Monte Carlo trials.
  std::uint32_t trials = 20'000;
  /// Worker threads sharing the trial workload. 0 selects the hardware
  /// concurrency. Estimates are bitwise-identical for every thread count:
  /// trials are sharded into fixed-size blocks whose RNG substreams depend
  /// only on (seed, block index), and floating-point reductions run in
  /// block order.
  std::uint32_t threads = 1;
  /// Trials per work block (the sharding granule). Part of the sample-path
  /// identity: estimates depend on (seed, trials, trials_per_block), never
  /// on `threads`.
  std::uint32_t trials_per_block = 4096;
};

/// Per-process and system-level survival estimates.
struct DependabilityReport {
  /// Survival probability per original process FCM (FT semantics applied),
  /// indexed like the process list used to build the SW graph.
  std::vector<double> process_survival;
  /// Probability every process delivered.
  double system_survival = 0.0;
  /// Probability every critical process (criticality >= threshold)
  /// delivered.
  double critical_survival = 0.0;
  /// Mean total criticality of processes lost per mission.
  double expected_criticality_loss = 0.0;
  std::uint32_t trials = 0;
  /// Worker threads actually used for this evaluation.
  std::uint32_t threads_used = 0;
  /// Number of fixed-size trial blocks the workload was sharded into.
  std::uint32_t blocks = 0;
};

/// Evaluates the mapping under the mission model. `seed` fixes the sample
/// path; identical inputs reproduce identical estimates, and the estimates
/// do not depend on `mission.threads` (each trial block draws from an RNG
/// substream keyed on the block index alone, and reductions run in block
/// order with compensated summation).
DependabilityReport evaluate_mapping(
    const mapping::SwGraph& sw, const mapping::ClusteringResult& clustering,
    const mapping::Assignment& assignment, const mapping::HwGraph& hw,
    const MissionModel& mission, std::uint64_t seed,
    core::Criticality critical_threshold = 7);

}  // namespace fcm::dependability
