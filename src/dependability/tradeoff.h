// Integration-level tradeoff analysis (§6): "Is there a limit to the level
// of integration one should design for?"
//
// `sweep_integration_levels` plans the same SW system onto platforms of
// every size in a range, evaluates each feasible plan (quality +
// dependability), and reports the sweep so the caller can locate the
// floor (below which replication/timing constraints make integration
// infeasible) and the knee (where further consolidation starts costing
// more dependability than it saves in hardware).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dependability/montecarlo.h"
#include "mapping/planner.h"

namespace fcm::dependability {

using mapping::Approach;
using mapping::Heuristic;

/// One platform size's outcome.
struct IntegrationLevel {
  int hw_nodes = 0;
  bool feasible = false;
  /// Set when feasible:
  std::optional<Heuristic> heuristic;
  double quality_score = 0.0;
  double cross_node_influence = 0.0;
  double max_colocated_criticality = 0.0;
  double system_survival = 0.0;
  double expected_criticality_loss = 0.0;
};

/// Sweep parameters.
struct TradeoffOptions {
  int min_nodes = 2;
  int max_nodes = 12;
  Approach approach = Approach::kAImportance;
  dependability::MissionModel mission;
  std::uint64_t seed = 1;
};

/// The sweep result plus derived summary figures.
struct TradeoffAnalysis {
  std::vector<IntegrationLevel> levels;

  /// Smallest feasible node count, or -1 when nothing is feasible.
  [[nodiscard]] int integration_floor() const noexcept;
  /// The feasible node count with the highest system survival.
  [[nodiscard]] int best_survival_level() const noexcept;
  /// The feasible node count with the highest quality score.
  [[nodiscard]] int best_quality_level() const noexcept;
};

/// Runs the sweep. Infeasible platform sizes are recorded, not skipped.
TradeoffAnalysis sweep_integration_levels(
    const core::FcmHierarchy& hierarchy,
    const core::InfluenceModel& influence,
    const std::vector<FcmId>& processes, const TradeoffOptions& options = {});

}  // namespace fcm::dependability
