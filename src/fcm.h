// Umbrella header: the framework's public API in one include.
//
//   #include "fcm.h"
//
// pulls in the FCM hierarchy and composition rules, the influence/
// separation model, the isolation catalogue and advisor, HW/SW mapping,
// dependability evaluation, and the simulated RT platform. Individual
// headers remain includable for finer-grained builds.
#pragma once

// Foundations
#include "common/error.h"       // IWYU pragma: export
#include "common/ids.h"         // IWYU pragma: export
#include "common/probability.h" // IWYU pragma: export
#include "common/rng.h"         // IWYU pragma: export
#include "common/time.h"        // IWYU pragma: export

// The framework core (the paper's contribution)
#include "core/attributes.h"         // IWYU pragma: export
#include "core/example98.h"          // IWYU pragma: export
#include "core/fcm.h"                // IWYU pragma: export
#include "core/hierarchy.h"          // IWYU pragma: export
#include "core/importance.h"         // IWYU pragma: export
#include "core/influence.h"          // IWYU pragma: export
#include "core/influence_analysis.h" // IWYU pragma: export
#include "core/integration.h"        // IWYU pragma: export
#include "core/isolation.h"          // IWYU pragma: export
#include "core/isolation_advisor.h"  // IWYU pragma: export
#include "core/separation.h"         // IWYU pragma: export
#include "core/verification.h"       // IWYU pragma: export

// HW/SW mapping
#include "mapping/assignment.h" // IWYU pragma: export
#include "mapping/clustering.h" // IWYU pragma: export
#include "mapping/hw.h"         // IWYU pragma: export
#include "mapping/planner.h"    // IWYU pragma: export
#include "mapping/quality.h"    // IWYU pragma: export
#include "mapping/replanner.h"  // IWYU pragma: export
#include "mapping/swgraph.h"    // IWYU pragma: export

// Dependability evaluation
#include "dependability/montecarlo.h"  // IWYU pragma: export
#include "dependability/reliability.h" // IWYU pragma: export

// Fault-tolerance mechanisms
#include "ftmech/checkpoint.h"     // IWYU pragma: export
#include "ftmech/nversion.h"       // IWYU pragma: export
#include "ftmech/recovery_block.h" // IWYU pragma: export
#include "ftmech/voter.h"          // IWYU pragma: export

// Fault-scenario campaigns and graceful degradation
#include "resilience/campaign.h" // IWYU pragma: export
#include "resilience/report.h"   // IWYU pragma: export
#include "resilience/scenario.h" // IWYU pragma: export

// Simulated RT platform
#include "sim/example98_platform.h"   // IWYU pragma: export
#include "sim/influence_estimator.h"  // IWYU pragma: export
#include "sim/platform.h"             // IWYU pragma: export
#include "sim/usage_history.h"        // IWYU pragma: export
