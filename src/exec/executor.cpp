#include "exec/executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace fcm::exec {

namespace {

// std::hardware_destructive_interference_size trips GCC's
// -Winterference-size under -Werror; 64 bytes covers x86-64 and common
// aarch64 parts, and a wrong guess only costs false sharing, not
// correctness.
constexpr std::size_t kCacheLine = 64;

// One lane's remaining block range, packed as (begin << 32) | end so owner
// pops (begin++) and thieves truncate (end -= half) race through a single
// CAS word. Padded so lanes never false-share.
struct alignas(kCacheLine) LaneRange {
  std::atomic<std::uint64_t> packed{0};
};

constexpr std::uint64_t pack(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}
constexpr std::uint32_t range_begin(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed);
}

// One in-flight top-level submission. Lives on the submitting thread's
// stack; workers hold a pointer only between the epoch publish and their
// completion handshake, both of which the caller waits out.
struct Job {
  const BlockFn* fn = nullptr;
  std::uint32_t lanes = 0;
  std::uint64_t submission = 0;
  std::vector<LaneRange> ranges;  // one per lane
  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  void record_error(std::exception_ptr eptr) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::move(eptr);
    failed.store(true, std::memory_order_relaxed);
  }
};

// Thread-local execution context: set while a thread runs blocks of any
// submission (pool worker, spawned legacy worker, caller lane 0, or the
// serial path). Nested parallel_for_blocks calls check it to run inline.
thread_local bool t_in_task = false;

// Monotone top-level submission ids. The pool path allocates its id while
// holding Pool::submit_mutex_, so id order matches submission order even
// when distinct threads submit concurrently — span/pid attribution stays
// deterministic for a fixed program. The serial and test-only spawn paths
// allocate at the call site; concurrent top-level callers on those paths
// would get arbitrary (but still unique) ids.
std::atomic<std::uint64_t> g_next_submission{1};

std::atomic<Backend> g_backend{Backend::kPersistentPool};

// RAII: marks the current thread as an executor task and points span
// attribution at `submission` for the duration.
class TaskScope {
 public:
  explicit TaskScope(std::uint64_t submission)
      : was_in_task_(t_in_task),
        previous_submission_(obs::current_submission()) {
    t_in_task = true;
    obs::set_current_submission(submission);
  }
  ~TaskScope() {
    t_in_task = was_in_task_;
    obs::set_current_submission(previous_submission_);
  }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  bool was_in_task_;
  std::uint64_t previous_submission_;
};

// Claims the front block of `range`, or returns false when it is empty.
bool take_front(LaneRange& range, std::uint32_t& block) {
  std::uint64_t current = range.packed.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t begin = range_begin(current);
    const std::uint32_t end = range_end(current);
    if (begin >= end) return false;
    if (range.packed.compare_exchange_weak(current, pack(begin + 1, end),
                                           std::memory_order_relaxed)) {
      block = begin;
      return true;
    }
  }
}

// Steals the upper half of the largest other lane's remaining range into
// lane `lane`'s own (empty) slot. Returns false when no lane has work.
bool steal_into(Job& job, std::uint32_t lane, std::uint64_t& steal_count) {
  for (;;) {
    std::uint32_t victim = lane;
    std::uint32_t victim_size = 0;
    std::uint64_t victim_packed = 0;
    for (std::uint32_t v = 0; v < job.lanes; ++v) {
      if (v == lane) continue;
      const std::uint64_t packed =
          job.ranges[v].packed.load(std::memory_order_relaxed);
      const std::uint32_t size = range_end(packed) - range_begin(packed);
      if (range_begin(packed) < range_end(packed) && size > victim_size) {
        victim = v;
        victim_size = size;
        victim_packed = packed;
      }
    }
    if (victim == lane) return false;  // everything is drained or in flight
    const std::uint32_t begin = range_begin(victim_packed);
    const std::uint32_t end = range_end(victim_packed);
    const std::uint32_t take = (end - begin + 1) / 2;
    const std::uint32_t split = end - take;
    if (!job.ranges[victim].packed.compare_exchange_weak(
            victim_packed, pack(begin, split), std::memory_order_relaxed)) {
      continue;  // lost the race; rescan
    }
    // The stolen chunk becomes this lane's own range, so other lanes can
    // re-steal from it in turn.
    job.ranges[lane].packed.store(pack(split, end),
                                  std::memory_order_relaxed);
    ++steal_count;
    return true;
  }
}

// One lane's work loop: drain the own range, then steal until the job is
// globally dry (or failed). Exceptions from `fn` are captured into the job.
void run_lane(Job& job, std::uint32_t lane) {
  TaskScope scope(job.submission);
  std::uint64_t steal_count = 0;
  try {
    std::uint32_t block = 0;
    while (!job.failed.load(std::memory_order_relaxed)) {
      if (take_front(job.ranges[lane], block)) {
        (*job.fn)(block, lane);
        continue;
      }
      if (!steal_into(job, lane, steal_count)) break;
    }
  } catch (...) {
    job.record_error(std::current_exception());
  }
  if (steal_count > 0) {
    job.steals.fetch_add(steal_count, std::memory_order_relaxed);
  }
  // Pool workers park between submissions instead of exiting, so the
  // thread-exit span flush the per-call pools relied on never fires; drain
  // explicitly before the caller folds the trace. Lane 0 is the caller and
  // flushes inside collect().
  if (lane != 0) obs::flush_thread_spans();
}

// The process-wide persistent pool. Workers park on a condition variable
// between submissions; submissions are serialized (callers queue on
// `submit_mutex_`), which is all the current call graph needs — concurrent
// top-level parallelism would fight over the same cores anyway.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Job& job) {
    const std::lock_guard<std::mutex> submit(submit_mutex_);
    // The id is allocated under submit_mutex_ so that id order matches
    // submission order (see g_next_submission).
    job.submission =
        g_next_submission.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ensure_workers(job.lanes - 1, lock);
      job_ = &job;
      active_workers_ = job.lanes - 1;
      ++epoch_;
    }
    work_cv_.notify_all();
    run_lane(job, 0);  // the caller is always lane 0
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return active_workers_ == 0; });
      job_ = nullptr;
    }
  }

  [[nodiscard]] std::uint32_t size() noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  Pool() {
    // Pin the obs singletons' construction before the pool's: worker
    // threads flush their span buffers into TraceCollector::global() when
    // they exit, which happens inside ~Pool at static destruction — the
    // collector (and registry) must therefore be constructed first so they
    // are destroyed last.
    (void)obs::TraceCollector::global();
    (void)obs::MetricsRegistry::global();
    (void)obs::TraceCollector::now_us();  // the epoch static, too
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  // Grows the pool to at least `wanted` parked workers. Called with
  // `mutex_` held (`lock`), so new workers adopt the current epoch and
  // cannot mistake an old submission for a fresh one.
  void ensure_workers(std::uint32_t wanted, std::unique_lock<std::mutex>&) {
    if (workers_.size() >= wanted) return;
    FCM_OBS_SPAN("exec.sched.resize", wanted);
    while (workers_.size() < wanted) {
      const std::uint32_t index =
          static_cast<std::uint32_t>(workers_.size());
      workers_.emplace_back(
          [this, index, epoch = epoch_] { worker_loop(index, epoch); });
    }
    FCM_OBS_GAUGE("exec.sched.pool_size",
                  static_cast<double>(workers_.size()));
  }

  void worker_loop(std::uint32_t index, std::uint64_t seen_epoch) {
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(
            lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
        if (shutdown_) return;
        seen_epoch = epoch_;
        // Worker `index` serves lane index + 1; workers beyond the lane
        // count sit this submission out (they still adopt the epoch). A
        // null job_ with a fresh epoch means the submission already
        // retired — possible only for sat-out workers scheduled late,
        // since lane-serving workers hold up the done handshake (run()
        // cannot clear job_ until they decrement active_workers_).
        if (job_ != nullptr && index + 1 < job_->lanes) job = job_;
      }
      if (job == nullptr) continue;
      run_lane(*job, index + 1);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--active_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex submit_mutex_;  // serializes top-level submissions

  std::mutex mutex_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint32_t active_workers_ = 0;
  bool shutdown_ = false;
};

// The retired per-call engine, preserved verbatim in spirit: spawn `lanes`
// threads, share one block counter, join. Differential tests flip to this
// backend to prove the pool changes nothing but speed.
void run_spawn_per_call(const BlockFn& fn, std::uint64_t n_blocks,
                        std::uint32_t lanes, std::uint64_t submission) {
  Job job;  // reused for its error slot and failed flag only
  job.submission = submission;
  // 64-bit so the per-lane overshooting fetch_add cannot wrap when
  // n_blocks is near the 32-bit FCM_REQUIRE bound.
  std::atomic<std::uint64_t> next_block{0};
  auto worker = [&](std::uint32_t lane) {
    TaskScope scope(submission);
    try {
      for (;;) {
        if (job.failed.load(std::memory_order_relaxed)) break;
        const std::uint64_t block =
            next_block.fetch_add(1, std::memory_order_relaxed);
        if (block >= n_blocks) break;
        fn(block, lane);
      }
    } catch (...) {
      job.record_error(std::current_exception());
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(lanes - 1);
  for (std::uint32_t lane = 1; lane < lanes; ++lane) {
    pool.emplace_back(worker, lane);
  }
  worker(0);
  for (std::thread& thread : pool) thread.join();
  if (job.error) std::rethrow_exception(job.error);
}

std::uint32_t env_threads() {
  const char* raw = std::getenv("FCM_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0 ||
      value > std::numeric_limits<std::uint32_t>::max()) {
    return 0;  // malformed or out of range: ignore the override
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::uint32_t resolve_threads(std::uint32_t requested,
                              std::uint64_t parallel_width) {
  std::uint32_t threads = requested;
  if (threads == 0) threads = env_threads();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (parallel_width < threads) {
    threads = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, parallel_width));
  }
  return threads;
}

void parallel_for_blocks(std::uint64_t n_blocks, std::uint32_t threads,
                         BlockFn fn) {
  if (n_blocks == 0) return;
  FCM_REQUIRE(n_blocks <= std::numeric_limits<std::uint32_t>::max(),
              "block count exceeds the executor's 32-bit index space");

  // Nested submission: a task already on an executor lane runs inner
  // blocks inline on that lane, inheriting the outer submission id.
  if (t_in_task) {
    FCM_OBS_COUNT("exec.nested_inline", 1);
    FCM_OBS_COUNT("exec.tasks", n_blocks);
    for (std::uint64_t block = 0; block < n_blocks; ++block) fn(block, 0);
    return;
  }

  std::uint32_t lanes = threads == 0 ? 1 : threads;
  if (n_blocks < lanes) lanes = static_cast<std::uint32_t>(n_blocks);

  FCM_OBS_COUNT("exec.submissions", 1);
  FCM_OBS_COUNT("exec.tasks", n_blocks);
  FCM_OBS_HIST("exec.blocks_per_submission",
               static_cast<double>(n_blocks));

  if (lanes <= 1) {
    TaskScope scope(
        g_next_submission.fetch_add(1, std::memory_order_relaxed));
    for (std::uint64_t block = 0; block < n_blocks; ++block) fn(block, 0);
    return;
  }

  if (backend_for_tests() == Backend::kSpawnPerCall) {
    run_spawn_per_call(
        fn, n_blocks, lanes,
        g_next_submission.fetch_add(1, std::memory_order_relaxed));
    return;
  }

  Job job;  // job.submission is assigned by Pool::run under submit_mutex_
  job.fn = &fn;
  job.lanes = lanes;
  job.ranges = std::vector<LaneRange>(lanes);
  const std::uint32_t blocks32 = static_cast<std::uint32_t>(n_blocks);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    // Contiguous near-equal chunks; stealing rebalances the tail.
    const std::uint32_t begin =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(blocks32) *
                                   lane / lanes);
    const std::uint32_t end =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(blocks32) *
                                   (lane + 1) / lanes);
    job.ranges[lane].packed.store(pack(begin, end),
                                  std::memory_order_relaxed);
  }
  Pool::instance().run(job);
  const std::uint64_t steals = job.steals.load(std::memory_order_relaxed);
  if (steals > 0) FCM_OBS_COUNT("exec.sched.steals", steals);
  if (job.error) std::rethrow_exception(job.error);
}

void set_backend_for_tests(Backend backend) noexcept {
  g_backend.store(backend, std::memory_order_relaxed);
}

Backend backend_for_tests() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

std::uint32_t pool_size() noexcept { return Pool::instance().size(); }

}  // namespace fcm::exec
