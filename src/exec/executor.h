// The shared deterministic work-stealing executor.
//
// Every parallel subsystem in this codebase — Monte Carlo dependability,
// the power-series separation kernels, the planner heuristic sweep, the
// sim influence estimator, and the resilience campaign — follows the same
// discipline: the workload shards into independent, index-addressed blocks;
// each block writes only block-indexed (or lane-exclusive) state; and the
// caller folds results in block order after the join. That contract makes
// every report bitwise identical for any worker count. What those
// subsystems used to duplicate — and what this header centralizes — is the
// *scheduling* machinery: resolving a thread count, spawning workers, and
// distributing blocks.
//
// `parallel_for_blocks(n_blocks, threads, fn)` runs `fn(block, lane)` for
// every block in [0, n_blocks) on up to `threads` lanes (the calling thread
// is always lane 0). Lanes are backed by one process-wide persistent pool:
// workers park between submissions instead of being created and joined per
// call, which is the difference between ~µs and ~ms on small-block
// workloads (the Table 1 example: 16 blocks of a few thousand trials).
// Blocks are distributed by range stealing — each lane owns a contiguous
// chunk of the block index space and steals half of the largest remaining
// chunk when its own runs dry — so which lane runs which block is
// scheduling noise, exactly like the per-call pools it replaces.
//
// Determinism contract (unchanged from the hand-rolled pools):
//   * `fn(block, lane)` must write only to block-indexed slots and to
//     lane-exclusive scratch. The executor guarantees each block runs
//     exactly once and each lane index is used by at most one thread at a
//     time within a submission.
//   * Results must be folded by the caller in block order after
//     `parallel_for_blocks` returns. Integer counts commute; float folds
//     use block-ordered compensated sums (`NeumaierSum`).
//   * Nothing observable may depend on `threads`, the lane assignment, or
//     the steal schedule.
//
// Nested submission rule: a task that is already running on an executor
// lane (any depth) runs inner blocks inline on its own lane instead of
// re-entering the pool. Nested parallelism therefore never oversubscribes
// the machine — `resilience::Campaign` can call the replanner, which calls
// the planner sweep, which calls the series kernels, and exactly one level
// fans out. Inline nested blocks inherit the outer call's submission id, so
// trace spans stay attributed to the top-level call that caused them.
//
// Observability (`fcm::obs`): deterministic work metrics are recorded under
// plain `exec.*` names (`exec.submissions`, `exec.tasks`,
// `exec.nested_inline`, the `exec.blocks_per_submission` histogram) and are
// invariant under the thread count, like every other counter in the
// registry. Scheduling telemetry that legitimately varies run to run —
// steal counts, pool size, resize spans — lives under `exec.sched.*` and is
// excluded from the byte-compare determinism gates (see
// tools/compare_metrics.py).
#pragma once

#include <cstdint>
#include <type_traits>

namespace fcm::exec {

/// Resolves a requested worker count for a region of `parallel_width`
/// independent work units. `requested == 0` selects the `FCM_THREADS`
/// environment override when it is set to a positive integer, and the
/// hardware concurrency otherwise. The result is clamped to
/// [1, max(1, parallel_width)] — never more lanes than blocks. This is the
/// one copy of the clamp that used to be pasted into every parallel
/// subsystem.
[[nodiscard]] std::uint32_t resolve_threads(std::uint32_t requested,
                                            std::uint64_t parallel_width);

/// Non-owning reference to a `void(block, lane)` callable. The referenced
/// callable only needs to outlive the `parallel_for_blocks` call, so
/// passing a lambda temporary is safe; nothing is allocated.
class BlockFn {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, BlockFn>)
  BlockFn(F&& fn) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* object, std::uint64_t block, std::uint32_t lane) {
          (*static_cast<std::remove_reference_t<F>*>(object))(block, lane);
        }) {}

  void operator()(std::uint64_t block, std::uint32_t lane) const {
    call_(object_, block, lane);
  }

 private:
  void* object_;
  void (*call_)(void*, std::uint64_t, std::uint32_t);
};

/// Runs `fn(block, lane)` for every block in [0, n_blocks), using at most
/// `threads` lanes (clamped to n_blocks; 0 behaves as 1). Lane indices are
/// dense in [0, lanes) and each is used by at most one thread at a time, so
/// callers may index per-lane scratch by the lane argument. Blocks run
/// exactly once each; which lane runs which block is unspecified.
///
/// The calling thread always participates as lane 0. If `fn` (on any lane)
/// throws, the first exception is rethrown on the calling thread after all
/// lanes quiesce; remaining blocks may be skipped.
///
/// Called from inside an executor task, the inner blocks run inline on the
/// calling lane (see the nested-submission rule above).
void parallel_for_blocks(std::uint64_t n_blocks, std::uint32_t threads,
                         BlockFn fn);

/// Which engine executes `parallel_for_blocks`.
enum class Backend : std::uint8_t {
  /// The persistent work-stealing pool (the production path).
  kPersistentPool,
  /// One `std::vector<std::thread>` spawned and joined per call — the
  /// pre-executor behavior of the five migrated subsystems, kept for one
  /// PR so differential tests can assert the pool changes nothing but
  /// speed. Test-only; scheduled for removal.
  kSpawnPerCall,
};

/// Selects the execution backend process-wide. Test-only: differential
/// tests flip this to prove report bytes are identical either way.
void set_backend_for_tests(Backend backend) noexcept;
[[nodiscard]] Backend backend_for_tests() noexcept;

/// Number of persistent workers currently parked in the pool (diagnostic;
/// grows on demand, never shrinks).
[[nodiscard]] std::uint32_t pool_size() noexcept;

}  // namespace fcm::exec
