// FCM attributes and their combination rules.
//
// "Each FCM has an associated set of attributes, such as criticality, fault
// tolerance requirements, timing constraints, and throughput. When SW FCMs
// are integrated, their associated attributes also need to be combined.
// Although different attributes get combined differently, the resulting FCM
// will usually have the most stringent component values (e.g. max
// criticality, min deadline), or an aggregate (e.g., sum of throughputs)."
// (paper §4.3)
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>

#include "common/time.h"
#include "sched/job.h"

namespace fcm::core {

/// Application criticality, higher = more critical (the paper's `C` column).
/// Dimensionless ordinal scale; only order and weighted sums are used.
using Criticality = std::int32_t;

/// Fault-tolerance requirement expressed as the number of concurrent
/// replicas the module must run with (the paper's `FT` column): 1 = simplex,
/// 2 = duplex, 3 = TMR.
using ReplicationDegree = std::int32_t;

/// Security classification level; combined by max (high water mark).
using SecurityLevel = std::int32_t;

/// The paper's Table 1 timing triple: earliest start time, task completion
/// deadline, computation time. An optional period generalizes the one-shot
/// triple to a recurring activity (release k at EST + k·period, deadline
/// TCD + k·period), matching the platform simulator's workload model.
struct TimingSpec {
  Instant est;   ///< earliest start time (first release when periodic)
  Instant tcd;   ///< task completion deadline (absolute, first instance)
  Duration ct;   ///< computation time
  std::optional<Duration> period;  ///< recurrence; nullopt = one-shot

  /// A one-shot triple (the Table 1 model).
  static TimingSpec one_shot(Instant est, Instant tcd, Duration ct) {
    return TimingSpec{est, tcd, ct, std::nullopt};
  }
  /// A periodic activity: first release at `est`, deadline `tcd`, then
  /// every `period`.
  static TimingSpec periodic(Instant est, Instant tcd, Duration ct,
                             Duration period) {
    return TimingSpec{est, tcd, ct, period};
  }

  [[nodiscard]] bool is_periodic() const noexcept {
    return period.has_value();
  }

  /// Converts to a scheduling job for feasibility analysis (first instance
  /// when periodic).
  [[nodiscard]] sched::Job to_job(JobId id, std::string name) const;

  /// Converts to the periodic task model; requires is_periodic().
  [[nodiscard]] sched::PeriodicTask to_periodic_task(std::string name) const;

  /// est + ct <= tcd, ct > 0, and (when periodic) relative deadline within
  /// the period (constrained-deadline model).
  [[nodiscard]] bool well_formed() const noexcept;

  /// The most stringent combination: min EST (earliest demand on the
  /// processor), min TCD, summed CT. Used when two FCMs *merge* into one
  /// schedulable unit; grouped FCMs instead keep their individual triples.
  [[nodiscard]] TimingSpec merged_with(const TimingSpec& other) const noexcept;

  auto operator<=>(const TimingSpec&) const noexcept = default;
};

std::ostream& operator<<(std::ostream& os, const TimingSpec& spec);

/// The attribute record attached to every FCM.
struct Attributes {
  Criticality criticality = 0;
  ReplicationDegree replication = 1;
  std::optional<TimingSpec> timing;
  /// Sustained output demand, in messages (or KB) per second; aggregates.
  double throughput = 0.0;
  SecurityLevel security = 0;
  /// Mean communication rate with the environment, used for dilation-aware
  /// HW mapping; aggregates.
  double comm_rate = 0.0;
  /// Named special HW resources this module must be collocated with (e.g.
  /// "sensor-bus"); the §6 tradeoff "need for a resource present on only one
  /// processor". Combined by union.
  std::set<std::string> required_resources;

  auto operator<=>(const Attributes&) const noexcept = default;
};

/// Combines attributes of FCMs being integrated per §4.3: most stringent
/// where attributes constrain (max criticality / replication / security,
/// merged timing), aggregate where they accumulate (throughput, comm rate).
Attributes combine(const Attributes& a, const Attributes& b);

std::ostream& operator<<(std::ostream& os, const Attributes& attrs);

}  // namespace fcm::core
