#include "core/report.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/table.h"
#include "core/importance.h"
#include "core/influence_analysis.h"
#include "core/isolation_advisor.h"
#include "core/separation.h"

namespace fcm::core {

std::string system_report(const FcmHierarchy& hierarchy,
                          const InfluenceModel& influence,
                          const ReportOptions& options) {
  std::ostringstream out;
  out << "# System integration report\n\n";

  // ---- Hierarchy census. ----
  out << "## Hierarchy\n";
  out << "  processes: " << hierarchy.at_level(Level::kProcess).size()
      << "\n  tasks: " << hierarchy.at_level(Level::kTask).size()
      << "\n  procedures: " << hierarchy.at_level(Level::kProcedure).size()
      << '\n';
  hierarchy.audit();
  out << "  rules R1/R2: satisfied (audit passed)\n\n";

  // ---- Member exposure and roles. ----
  out << "## Influence exposure (Section 4.2.4)\n";
  const auto summaries = summarize_influence(influence);
  TextTable roles({"member", "importance", "out", "in", "role"});
  for (const InfluenceSummary& s : summaries) {
    double imp = 0.0;
    if (hierarchy.alive(s.id)) {
      imp = importance(hierarchy.get(s.id).attributes);
    }
    roles.add_row({s.name, fmt(imp), fmt(s.out_influence),
                   fmt(s.in_influence),
                   to_string(classify(s, options.role_threshold))});
  }
  out << roles.render() << '\n';

  // ---- Weakest separations (Eq. 3). ----
  if (influence.member_count() >= 2) {
    out << "## Weakest separations (Eq. 3, order "
        << options.separation_order << ")\n";
    SeparationOptions sep_options;
    sep_options.max_order = options.separation_order;
    const SeparationAnalysis analysis(influence, sep_options);
    struct Pair {
      std::size_t i, j;
      double separation;
    };
    std::vector<Pair> pairs;
    for (std::size_t i = 0; i < influence.member_count(); ++i) {
      for (std::size_t j = 0; j < influence.member_count(); ++j) {
        if (i == j) continue;
        pairs.push_back({i, j, analysis.separation(i, j).value()});
      }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
      if (a.separation != b.separation) return a.separation < b.separation;
      if (a.i != b.i) return a.i < b.i;
      return a.j < b.j;
    });
    const std::size_t count =
        std::min(options.weakest_separations, pairs.size());
    for (std::size_t k = 0; k < count; ++k) {
      out << "  " << influence.member_name(pairs[k].i) << " o "
          << influence.member_name(pairs[k].j) << " = "
          << fmt(pairs[k].separation) << '\n';
    }
    out << '\n';
  }

  // ---- Isolation recommendations. ----
  AdvisorOptions advisor;
  advisor.top_k = options.recommendations;
  const auto advice = advise(influence, advisor);
  out << "## Isolation recommendations\n";
  if (advice.empty()) {
    out << "  none (no factor-backed influence above the threshold)\n";
  }
  for (const IsolationAdvice& item : advice) {
    out << "  " << to_string(item.technique) << " at "
        << item.boundary_name << " -> " << item.target_name
        << ": influence " << fmt(item.influence_before) << " -> "
        << fmt(item.influence_after) << '\n';
  }
  return out.str();
}

}  // namespace fcm::core
