#include "core/isolation_advisor.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace fcm::core {

std::vector<IsolationAdvice> advise(const InfluenceModel& model,
                                    const AdvisorOptions& options) {
  FCM_REQUIRE(options.assumed_factor >= 0.0 && options.assumed_factor <= 1.0,
              "assumed factor must be in [0,1]");
  std::vector<IsolationAdvice> advice;

  for (std::size_t i = 0; i < model.member_count(); ++i) {
    for (std::size_t j = 0; j < model.member_count(); ++j) {
      if (i == j) continue;
      const FcmId from = model.member(i);
      const FcmId to = model.member(j);
      const auto& factors = model.factors(from, to);
      if (factors.empty()) continue;
      const double before = model.influence(from, to).value();
      if (before < options.min_influence) continue;

      // Candidate techniques: the mitigations of the factors present.
      std::set<IsolationTechnique> candidates;
      for (const InfluenceFactor& factor : factors) {
        if (const auto technique = mitigation_for(factor.kind)) {
          candidates.insert(*technique);
        }
      }
      for (const IsolationTechnique technique : candidates) {
        IsolationConfig config;
        config.enable(technique, options.assumed_factor);
        const double after = model.influence(from, to, config).value();
        if (after >= before) continue;  // no effect on this pair
        IsolationAdvice item;
        item.boundary = from;
        item.boundary_name = model.member_name(i);
        item.target = to;
        item.target_name = model.member_name(j);
        item.technique = technique;
        item.influence_before = before;
        item.influence_after = after;
        advice.push_back(std::move(item));
      }
    }
  }

  std::sort(advice.begin(), advice.end(),
            [](const IsolationAdvice& a, const IsolationAdvice& b) {
              if (a.reduction() != b.reduction()) {
                return a.reduction() > b.reduction();
              }
              if (a.boundary != b.boundary) return a.boundary < b.boundary;
              return a.target < b.target;
            });
  if (options.top_k > 0 && advice.size() > options.top_k) {
    advice.resize(options.top_k);
  }
  return advice;
}

}  // namespace fcm::core
