#include "core/isolation.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"

namespace fcm::core {

const char* to_string(IsolationTechnique technique) noexcept {
  switch (technique) {
    case IsolationTechnique::kInformationHiding:
      return "information-hiding";
    case IsolationTechnique::kParameterChecking:
      return "parameter-checking";
    case IsolationTechnique::kStatelessProcedures:
      return "stateless-procedures";
    case IsolationTechnique::kRecoveryBlocks:
      return "recovery-blocks";
    case IsolationTechnique::kNVersionProgramming:
      return "n-version-programming";
    case IsolationTechnique::kPreemptiveScheduling:
      return "preemptive-scheduling";
    case IsolationTechnique::kMemorySeparation:
      return "memory-separation";
    case IsolationTechnique::kResourceQuotas:
      return "resource-quotas";
    case IsolationTechnique::kMessageChecking:
      return "message-checking";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, IsolationTechnique technique) {
  return os << to_string(technique);
}

void IsolationConfig::enable(IsolationTechnique technique,
                             double reduction_factor) {
  FCM_REQUIRE(reduction_factor >= 0.0 && reduction_factor <= 1.0,
              "reduction factor must be in [0,1]");
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const Entry& e) { return e.technique == technique; });
  if (it != entries_.end()) {
    it->factor = reduction_factor;
    return;
  }
  entries_.push_back(Entry{technique, reduction_factor});
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.technique < b.technique;
            });
}

void IsolationConfig::disable(IsolationTechnique technique) {
  std::erase_if(entries_,
                [&](const Entry& e) { return e.technique == technique; });
}

bool IsolationConfig::enabled(IsolationTechnique technique) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.technique == technique;
  });
}

double IsolationConfig::factor(IsolationTechnique technique) const noexcept {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const Entry& e) { return e.technique == technique; });
  return it == entries_.end() ? 1.0 : it->factor;
}

}  // namespace fcm::core
