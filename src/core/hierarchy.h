// The FCM hierarchy: rules R1 and R2 enforced structurally.
//
// R1: "Any number of FCMs at one level can be integrated to form an FCM at
//      the next higher level" — attach() admits any child count but checks
//      levels are adjacent.
// R2: "The integration DAG is a tree" — attach() rejects a second parent,
//      so sharing a lower-level FCM between parents is impossible by
//      construction; reuse requires explicit duplication (clone_subtree).
//
// FCMs removed by merging remain as tombstones so historical ids stay
// resolvable in integration logs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fcm.h"
#include "graph/digraph.h"

namespace fcm::core {

/// Owns all FCMs of one system design and their parent/child structure.
class FcmHierarchy {
 public:
  FcmHierarchy() = default;

  /// Creates a new root FCM (no parent yet) and returns its id.
  FcmId create(std::string name, Level level, Attributes attributes = {},
               IsolationConfig isolation = {});

  /// Convenience: create at the given level and immediately attach.
  FcmId create_child(FcmId parent, std::string name,
                     Attributes attributes = {},
                     IsolationConfig isolation = {});

  /// Groups `child` under `parent` (the paper's *grouping* composition).
  /// Enforces R1 (adjacent levels) and R2 (single parent). Throws
  /// RuleViolation on violations.
  void attach(FcmId child, FcmId parent);

  /// Whether the id refers to a live (non-merged-away) FCM.
  [[nodiscard]] bool alive(FcmId id) const noexcept;

  /// The FCM record; throws NotFound for dead/unknown ids.
  [[nodiscard]] const Fcm& get(FcmId id) const;
  [[nodiscard]] Fcm& get_mutable(FcmId id);

  /// Parent id, or invalid id for roots.
  [[nodiscard]] FcmId parent(FcmId id) const;

  /// Children in attach order.
  [[nodiscard]] const std::vector<FcmId>& children(FcmId id) const;

  /// Siblings: other children of the same parent. Root FCMs of the same
  /// level count as siblings of each other (they share the conceptual
  /// "system" parent) — this is what allows two top-level processes to be
  /// merged under R3.
  [[nodiscard]] std::vector<FcmId> siblings(FcmId id) const;

  /// The root ancestor of `id` (possibly `id` itself).
  [[nodiscard]] FcmId root_of(FcmId id) const;

  /// All live FCMs at a level.
  [[nodiscard]] std::vector<FcmId> at_level(Level level) const;

  /// All live FCM ids.
  [[nodiscard]] std::vector<FcmId> all() const;

  /// All live descendants of `id` (excluding `id`), pre-order.
  [[nodiscard]] std::vector<FcmId> descendants(FcmId id) const;

  /// Deep-copies the subtree rooted at `source` and attaches the copy under
  /// `new_parent`. This is the paper's duplication escape hatch for reuse:
  /// "if two tasks require the same procedure, then a copy of the procedure
  /// can be inserted separately into each". Copies are suffixed `.dup<N>`.
  FcmId clone_subtree(FcmId source, FcmId new_parent);

  /// Merges sibling `b` into sibling `a` (rule R3 checked by the caller,
  /// integration.h). Children of `b` are re-parented to `a`, attributes are
  /// combined, `b` becomes a tombstone. Returns `a`.
  FcmId absorb_sibling(FcmId a, FcmId b, const std::string& merged_name);

  /// The parent->child structure as a graph over live FCMs (for R2 audits
  /// and DOT export). Node names are FCM names.
  [[nodiscard]] graph::Digraph structure_graph() const;

  /// Verifies the stored structure still satisfies R1+R2 (tree-shaped,
  /// adjacent levels). Cheap; intended for tests and post-merge audits.
  void audit() const;

  /// Number of live FCMs.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Monotone revision counter, bumped by every structural mutation
  /// (create, attach, clone, absorb) and by get_mutable (which hands out a
  /// writable reference, so mutation must be presumed). Caches over
  /// hierarchy-derived results key on this to invalidate after R3-R5
  /// integration operations.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

 private:
  struct Slot {
    Fcm fcm;
    FcmId parent;  // invalid for roots
    std::vector<FcmId> children;
    bool dead = false;
  };

  Slot& slot(FcmId id);
  const Slot& slot(FcmId id) const;

  std::vector<Slot> slots_;
  int clone_counter_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace fcm::core
