// System report generation.
//
// Integration campaigns are reviewed by people; this assembles the
// framework's views of one system — hierarchy census, influence exposure
// and §4.2.4 roles, weakest separations, and the top isolation
// recommendations — into a plain-text report suitable for design reviews
// (or a CI artifact diffed across revisions).
#pragma once

#include <string>

#include "core/hierarchy.h"
#include "core/influence.h"

namespace fcm::core {

/// Report knobs.
struct ReportOptions {
  /// Threshold used for role classification (see influence_analysis.h).
  double role_threshold = 0.3;
  /// Number of weakest separations listed.
  std::size_t weakest_separations = 5;
  /// Number of isolation recommendations listed.
  std::size_t recommendations = 5;
  /// Eq. 3 truncation order.
  int separation_order = 6;
};

/// Builds the report for a hierarchy plus the influence model over its
/// members. Deterministic output (no timestamps) so reports diff cleanly.
std::string system_report(const FcmHierarchy& hierarchy,
                          const InfluenceModel& influence,
                          const ReportOptions& options = {});

}  // namespace fcm::core
