#include "core/synthetic.h"

#include <string>

#include "common/rng.h"

namespace fcm::core::synthetic {

System make_system(std::size_t processes, std::uint64_t seed) {
  Rng rng(seed);
  System sys;
  for (std::size_t i = 0; i < processes; ++i) {
    core::Attributes attrs;
    attrs.criticality = static_cast<core::Criticality>(rng.range(1, 10));
    attrs.replication = rng.uniform() < 0.15 ? 3
                        : rng.uniform() < 0.3 ? 2
                                              : 1;
    const std::int64_t est = rng.range(0, 50);
    const std::int64_t ct = rng.range(1, 6);
    const std::int64_t tcd = est + ct + rng.range(20, 200);
    attrs.timing = core::TimingSpec::one_shot(
        Instant::epoch() + Duration::millis(est),
        Instant::epoch() + Duration::millis(tcd), Duration::millis(ct));
    const FcmId id = sys.hierarchy.create("p" + std::to_string(i + 1),
                                          core::Level::kProcess, attrs);
    sys.influence.add_member(id, sys.hierarchy.get(id).name);
    sys.processes.push_back(id);
  }
  // Sparse influence: ~3 out-edges per process.
  for (std::size_t i = 0; i < processes; ++i) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t j = rng.below(static_cast<std::uint32_t>(processes));
      if (j == i) continue;
      if (sys.influence.influence(sys.processes[i], sys.processes[j])
              .value() > 0.0) {
        continue;
      }
      sys.influence.set_direct(sys.processes[i], sys.processes[j],
                               Probability(rng.uniform(0.05, 0.6)));
    }
  }
  return sys;
}

}  // namespace fcm::core::synthetic
