#include "core/example98.h"

#include "common/error.h"

namespace fcm::core::example98 {

Attributes ProcessSpec::to_attributes() const {
  Attributes attrs;
  attrs.criticality = criticality;
  attrs.replication = replication;
  TimingSpec timing;
  timing.est = Instant::epoch() + Duration::millis(est_ms);
  timing.tcd = Instant::epoch() + Duration::millis(tcd_ms);
  timing.ct = Duration::millis(ct_ms);
  attrs.timing = timing;
  return attrs;
}

const std::vector<ProcessSpec>& table1() {
  static const std::vector<ProcessSpec> kTable{
      //   name  C  FT  EST TCD CT
      {"p1", 10, 3, 0, 50, 5},
      {"p2", 8, 2, 1, 9, 3},
      {"p3", 7, 2, 0, 5, 3},
      {"p4", 5, 1, 0, 10, 5},
      {"p5", 4, 1, 2, 6, 4},
      {"p6", 3, 1, 4, 45, 6},
      {"p7", 2, 1, 10, 60, 8},
      {"p8", 1, 1, 12, 70, 8},
  };
  return kTable;
}

const std::vector<InfluenceEdge>& figure3_edges() {
  static const std::vector<InfluenceEdge> kEdges{
      {"p1", "p2", 0.7}, {"p2", "p1", 0.6},  // highest mutual pair (1.3)
      {"p2", "p3", 0.5}, {"p3", "p2", 0.3},  // second (0.8)
      {"p7", "p8", 0.7},                     // third (0.7)
      {"p1", "p4", 0.2},
      {"p4", "p5", 0.3},
      {"p5", "p7", 0.2}, {"p5", "p8", 0.2},
      {"p3", "p6", 0.2},
      {"p6", "p5", 0.1},
      {"p6", "p1", 0.1},
  };
  return kEdges;
}

FcmId Instance::process(int k) const {
  FCM_REQUIRE(k >= 1 && k <= static_cast<int>(processes.size()),
              "process index out of range");
  return processes[static_cast<std::size_t>(k - 1)];
}

Instance make_instance() {
  Instance instance;
  for (const ProcessSpec& spec : table1()) {
    const FcmId id = instance.hierarchy.create(spec.name, Level::kProcess,
                                               spec.to_attributes());
    instance.processes.push_back(id);
    instance.influence.add_member(id, spec.name);
  }
  for (const InfluenceEdge& edge : figure3_edges()) {
    FcmId from, to;
    for (std::size_t i = 0; i < table1().size(); ++i) {
      if (table1()[i].name == edge.from) from = instance.processes[i];
      if (table1()[i].name == edge.to) to = instance.processes[i];
    }
    instance.influence.set_direct(from, to, Probability(edge.weight));
  }
  return instance;
}

}  // namespace fcm::core::example98
