// Influence asymmetry analysis (§4.2.4).
//
// "The value of influence may not be symmetric ... The unidirectional
// nature of influence can distinguish a critical FCM from a non-critical
// one." A module that exerts influence but receives little is a *hazard*
// (contain it: strengthen its output isolation); one that receives much but
// exerts little is a *victim* (protect it: acceptance-check its inputs);
// high both ways is *coupled* (a merge candidate under H1); low both ways
// is *isolated*. These roles drive where the §4.2.2/§4.2.3 reduction
// techniques pay off.
#pragma once

#include <string>
#include <vector>

#include "core/influence.h"

namespace fcm::core {

/// Directional influence exposure of one member.
struct InfluenceSummary {
  std::size_t index = 0;
  FcmId id;
  std::string name;
  /// Probability of affecting at least one other member:
  /// 1 − Π_j (1 − influence(i → j)).
  double out_influence = 0.0;
  /// Probability of being affected by at least one other member.
  double in_influence = 0.0;

  [[nodiscard]] double asymmetry() const noexcept {
    return out_influence - in_influence;
  }
};

/// The §4.2.4 role classification.
enum class InfluenceRole : std::uint8_t {
  kHazard,    ///< out high, in low — contain its outputs
  kVictim,    ///< in high, out low — guard its inputs
  kCoupled,   ///< both high — collocation/merge candidate
  kIsolated,  ///< both low — already separated
};

const char* to_string(InfluenceRole role) noexcept;

/// Per-member directional summaries, in member registration order.
std::vector<InfluenceSummary> summarize_influence(const InfluenceModel& model);

/// Classifies a summary against a threshold (default 0.3: an exposure
/// above it counts as "high").
InfluenceRole classify(const InfluenceSummary& summary,
                       double threshold = 0.3) noexcept;

/// Members whose inputs deserve acceptance checks first: victims and
/// coupled members ordered by in-influence, descending.
std::vector<InfluenceSummary> guard_priority(const InfluenceModel& model,
                                             double threshold = 0.3);

}  // namespace fcm::core
