#include "core/hierarchy.h"

#include <algorithm>

#include "common/error.h"
#include "graph/algorithms.h"

namespace fcm::core {

FcmId FcmHierarchy::create(std::string name, Level level,
                           Attributes attributes,
                           IsolationConfig isolation) {
  FCM_REQUIRE(!name.empty(), "FCM name must not be empty");
  Slot slot;
  slot.fcm.id = FcmId(static_cast<std::uint32_t>(slots_.size()));
  slot.fcm.name = std::move(name);
  slot.fcm.level = level;
  slot.fcm.attributes = attributes;
  slot.fcm.isolation = std::move(isolation);
  slots_.push_back(std::move(slot));
  ++revision_;
  return slots_.back().fcm.id;
}

FcmId FcmHierarchy::create_child(FcmId parent, std::string name,
                                 Attributes attributes,
                                 IsolationConfig isolation) {
  const Level level = child_level(get(parent).level);
  const FcmId id =
      create(std::move(name), level, attributes, std::move(isolation));
  attach(id, parent);
  return id;
}

FcmHierarchy::Slot& FcmHierarchy::slot(FcmId id) {
  if (!id.valid() || id.value() >= slots_.size()) {
    throw NotFound("unknown FCM id");
  }
  Slot& s = slots_[id.value()];
  if (s.dead) throw NotFound("FCM " + s.fcm.name + " was merged away");
  return s;
}

const FcmHierarchy::Slot& FcmHierarchy::slot(FcmId id) const {
  return const_cast<FcmHierarchy*>(this)->slot(id);
}

void FcmHierarchy::attach(FcmId child, FcmId parent) {
  Slot& c = slot(child);
  Slot& p = slot(parent);
  if (c.parent.valid()) {
    throw RuleViolation(
        "R2", "FCM " + c.fcm.name + " already has a parent; the integration "
              "DAG must remain a tree (duplicate the FCM instead)");
  }
  if (parent_level(c.fcm.level) != p.fcm.level) {
    throw RuleViolation(
        "R1", "a " + std::string(to_string(c.fcm.level)) +
                  " can only be integrated into a " +
                  to_string(parent_level(c.fcm.level)) + ", not a " +
                  to_string(p.fcm.level));
  }
  c.parent = parent;
  p.children.push_back(child);
  ++revision_;
}

bool FcmHierarchy::alive(FcmId id) const noexcept {
  return id.valid() && id.value() < slots_.size() &&
         !slots_[id.value()].dead;
}

const Fcm& FcmHierarchy::get(FcmId id) const { return slot(id).fcm; }

Fcm& FcmHierarchy::get_mutable(FcmId id) {
  ++revision_;  // a writable reference escapes; assume it mutates
  return slot(id).fcm;
}

FcmId FcmHierarchy::parent(FcmId id) const { return slot(id).parent; }

const std::vector<FcmId>& FcmHierarchy::children(FcmId id) const {
  return slot(id).children;
}

std::vector<FcmId> FcmHierarchy::siblings(FcmId id) const {
  const Slot& s = slot(id);
  std::vector<FcmId> result;
  if (s.parent.valid()) {
    for (const FcmId sibling : slot(s.parent).children) {
      if (sibling != id) result.push_back(sibling);
    }
  } else {
    // Roots at the same level are siblings under the conceptual system root.
    for (const Slot& other : slots_) {
      if (other.dead || other.fcm.id == id) continue;
      if (!other.parent.valid() && other.fcm.level == s.fcm.level) {
        result.push_back(other.fcm.id);
      }
    }
  }
  return result;
}

FcmId FcmHierarchy::root_of(FcmId id) const {
  FcmId current = id;
  while (slot(current).parent.valid()) current = slot(current).parent;
  return current;
}

std::vector<FcmId> FcmHierarchy::at_level(Level level) const {
  std::vector<FcmId> result;
  for (const Slot& s : slots_) {
    if (!s.dead && s.fcm.level == level) result.push_back(s.fcm.id);
  }
  return result;
}

std::vector<FcmId> FcmHierarchy::all() const {
  std::vector<FcmId> result;
  for (const Slot& s : slots_) {
    if (!s.dead) result.push_back(s.fcm.id);
  }
  return result;
}

std::vector<FcmId> FcmHierarchy::descendants(FcmId id) const {
  std::vector<FcmId> result;
  std::vector<FcmId> work{id};
  while (!work.empty()) {
    const FcmId current = work.back();
    work.pop_back();
    for (const FcmId child : slot(current).children) {
      result.push_back(child);
      work.push_back(child);
    }
  }
  return result;
}

FcmId FcmHierarchy::clone_subtree(FcmId source, FcmId new_parent) {
  const Fcm original = get(source);  // copy before slots_ may reallocate
  ++clone_counter_;
  const FcmId copy =
      create(original.name + ".dup" + std::to_string(clone_counter_),
             original.level, original.attributes, original.isolation);
  attach(copy, new_parent);
  // Children vector is copied up front: create() below invalidates the
  // reference returned by children().
  const std::vector<FcmId> kids = children(source);
  for (const FcmId child : kids) clone_subtree(child, copy);
  return copy;
}

FcmId FcmHierarchy::absorb_sibling(FcmId a, FcmId b,
                                   const std::string& merged_name) {
  FCM_REQUIRE(a != b, "cannot merge an FCM with itself");
  // Validate before mutating.
  {
    const Slot& sa = slot(a);
    const Slot& sb = slot(b);
    FCM_REQUIRE(sa.fcm.level == sb.fcm.level,
                "merge requires FCMs at the same level");
  }
  const std::vector<FcmId> kids = children(b);
  for (const FcmId child : kids) {
    Slot& c = slot(child);
    c.parent = a;
    slot(a).children.push_back(child);
  }
  Slot& sb = slot(b);
  Slot& sa = slot(a);
  sa.fcm.attributes = combine(sa.fcm.attributes, sb.fcm.attributes);
  sa.fcm.name = merged_name.empty() ? sa.fcm.name + "+" + sb.fcm.name
                                    : merged_name;
  // Unlink b from its parent and tombstone it.
  if (sb.parent.valid()) {
    auto& parent_children = slot(sb.parent).children;
    std::erase(parent_children, b);
  }
  sb.children.clear();
  sb.dead = true;
  ++revision_;
  return a;
}

graph::Digraph FcmHierarchy::structure_graph() const {
  graph::Digraph g;
  std::vector<std::int64_t> node_of(slots_.size(), -1);
  for (const Slot& s : slots_) {
    if (s.dead) continue;
    node_of[s.fcm.id.value()] =
        static_cast<std::int64_t>(g.add_node(s.fcm.name));
  }
  for (const Slot& s : slots_) {
    if (s.dead || !s.parent.valid()) continue;
    g.add_edge(
        static_cast<graph::NodeIndex>(node_of[s.parent.value()]),
        static_cast<graph::NodeIndex>(node_of[s.fcm.id.value()]), 1.0);
  }
  return g;
}

void FcmHierarchy::audit() const {
  for (const Slot& s : slots_) {
    if (s.dead) continue;
    if (s.parent.valid()) {
      const Slot& p = slot(s.parent);
      FCM_REQUIRE(parent_level(s.fcm.level) == p.fcm.level,
                  "R1 violated for " + s.fcm.name);
      const auto& siblings = p.children;
      FCM_REQUIRE(std::count(siblings.begin(), siblings.end(), s.fcm.id) == 1,
                  "parent/child link inconsistency for " + s.fcm.name);
    }
    for (const FcmId child : s.children) {
      FCM_REQUIRE(slot(child).parent == s.fcm.id,
                  "child link inconsistency under " + s.fcm.name);
    }
  }
  FCM_REQUIRE(graph::is_in_forest(structure_graph()),
              "R2 violated: integration DAG is not a tree/forest");
}

std::size_t FcmHierarchy::size() const noexcept {
  std::size_t count = 0;
  for (const Slot& s : slots_) {
    if (!s.dead) ++count;
  }
  return count;
}

}  // namespace fcm::core
