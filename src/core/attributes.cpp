#include "core/attributes.h"

#include <algorithm>
#include <ostream>

namespace fcm::core {

sched::Job TimingSpec::to_job(JobId id, std::string name) const {
  sched::Job job;
  job.id = id;
  job.name = std::move(name);
  job.release = est;
  job.deadline = tcd;
  job.cost = ct;
  return job;
}

sched::PeriodicTask TimingSpec::to_periodic_task(std::string name) const {
  sched::PeriodicTask task;
  task.name = std::move(name);
  task.period = period.value();
  task.deadline = tcd - est;
  task.cost = ct;
  task.offset = est - Instant::epoch();
  return task;
}

bool TimingSpec::well_formed() const noexcept {
  if (ct <= Duration::zero() || est + ct > tcd) return false;
  if (period.has_value()) {
    return *period > Duration::zero() && tcd - est <= *period;
  }
  return true;
}

TimingSpec TimingSpec::merged_with(const TimingSpec& other) const noexcept {
  TimingSpec merged;
  merged.est = std::min(est, other.est);
  merged.tcd = std::min(tcd, other.tcd);
  merged.ct = ct + other.ct;
  if (period && other.period) {
    merged.period = std::min(*period, *other.period);  // fastest rate wins
  } else {
    merged.period = period ? period : other.period;
  }
  return merged;
}

std::ostream& operator<<(std::ostream& os, const TimingSpec& spec) {
  return os << '<' << spec.est.since_epoch().count() << ','
            << spec.tcd.since_epoch().count() << ',' << spec.ct.count()
            << '>';
}

Attributes combine(const Attributes& a, const Attributes& b) {
  Attributes result;
  result.criticality = std::max(a.criticality, b.criticality);
  result.replication = std::max(a.replication, b.replication);
  result.security = std::max(a.security, b.security);
  result.throughput = a.throughput + b.throughput;
  result.comm_rate = a.comm_rate + b.comm_rate;
  if (a.timing && b.timing) {
    result.timing = a.timing->merged_with(*b.timing);
  } else {
    result.timing = a.timing ? a.timing : b.timing;
  }
  result.required_resources = a.required_resources;
  result.required_resources.insert(b.required_resources.begin(),
                                   b.required_resources.end());
  return result;
}

std::ostream& operator<<(std::ostream& os, const Attributes& attrs) {
  os << "{C=" << attrs.criticality << " FT=" << attrs.replication;
  if (attrs.timing) os << " timing=" << *attrs.timing;
  os << " thr=" << attrs.throughput << " sec=" << attrs.security << '}';
  return os;
}

}  // namespace fcm::core
