#include "core/influence_analysis.h"

#include <algorithm>

namespace fcm::core {

const char* to_string(InfluenceRole role) noexcept {
  switch (role) {
    case InfluenceRole::kHazard:
      return "hazard";
    case InfluenceRole::kVictim:
      return "victim";
    case InfluenceRole::kCoupled:
      return "coupled";
    case InfluenceRole::kIsolated:
      return "isolated";
  }
  return "?";
}

std::vector<InfluenceSummary> summarize_influence(
    const InfluenceModel& model) {
  const std::size_t n = model.member_count();
  std::vector<InfluenceSummary> summaries(n);
  for (std::size_t i = 0; i < n; ++i) {
    InfluenceSummary& s = summaries[i];
    s.index = i;
    s.id = model.member(i);
    s.name = model.member_name(i);
    double none_out = 1.0, none_in = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      none_out *= 1.0 - model.influence(s.id, model.member(j)).value();
      none_in *= 1.0 - model.influence(model.member(j), s.id).value();
    }
    s.out_influence = 1.0 - none_out;
    s.in_influence = 1.0 - none_in;
  }
  return summaries;
}

InfluenceRole classify(const InfluenceSummary& summary,
                       double threshold) noexcept {
  const bool out_high = summary.out_influence >= threshold;
  const bool in_high = summary.in_influence >= threshold;
  if (out_high && in_high) return InfluenceRole::kCoupled;
  if (out_high) return InfluenceRole::kHazard;
  if (in_high) return InfluenceRole::kVictim;
  return InfluenceRole::kIsolated;
}

std::vector<InfluenceSummary> guard_priority(const InfluenceModel& model,
                                             double threshold) {
  std::vector<InfluenceSummary> summaries = summarize_influence(model);
  std::erase_if(summaries, [&](const InfluenceSummary& s) {
    const InfluenceRole role = classify(s, threshold);
    return role != InfluenceRole::kVictim && role != InfluenceRole::kCoupled;
  });
  std::sort(summaries.begin(), summaries.end(),
            [](const InfluenceSummary& a, const InfluenceSummary& b) {
              if (a.in_influence != b.in_influence) {
                return a.in_influence > b.in_influence;
              }
              return a.index < b.index;
            });
  return summaries;
}

}  // namespace fcm::core
