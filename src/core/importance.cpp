#include "core/importance.h"

#include <algorithm>

namespace fcm::core {

double timing_urgency(const Attributes& attrs) noexcept {
  if (!attrs.timing.has_value()) return 0.0;
  const TimingSpec& t = *attrs.timing;
  const double window =
      static_cast<double>((t.tcd - t.est).count());
  if (window <= 0.0) return 1.0;
  const double used = static_cast<double>(t.ct.count());
  return std::clamp(used / window, 0.0, 1.0);
}

double importance(const Attributes& attrs, const ImportanceWeights& w) {
  auto ratio = [](double value, double scale) {
    return scale > 0.0 ? std::clamp(value / scale, 0.0, 1.0) : 0.0;
  };
  double sum = 0.0;
  sum += w.criticality *
         ratio(attrs.criticality, static_cast<double>(w.criticality_scale));
  // Simplex (replication 1) is the baseline and contributes nothing; the
  // scale maximum maps to a full contribution.
  sum += w.replication * ratio(attrs.replication - 1,
                               static_cast<double>(w.replication_scale - 1));
  sum += w.timing * timing_urgency(attrs);
  sum += w.throughput * ratio(attrs.throughput, w.throughput_scale);
  sum += w.security *
         ratio(attrs.security, static_cast<double>(w.security_scale));
  sum += w.comm_rate * ratio(attrs.comm_rate, w.comm_rate_scale);
  return sum;
}

}  // namespace fcm::core
