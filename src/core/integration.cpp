#include "core/integration.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"

namespace fcm::core {

const char* to_string(CompositionKind kind) noexcept {
  switch (kind) {
    case CompositionKind::kMerge:
      return "merge";
    case CompositionKind::kGroup:
      return "group";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const IntegrationOp& op) {
  os << to_string(op.kind) << '(';
  for (std::size_t i = 0; i < op.inputs.size(); ++i) {
    if (i > 0) os << ',';
    os << op.inputs[i];
  }
  os << ") -> " << op.result;
  if (!op.note.empty()) os << " [" << op.note << ']';
  return os;
}

void Integrator::require_siblings(FcmId a, FcmId b) const {
  const auto sibs = hierarchy_->siblings(a);
  if (std::find(sibs.begin(), sibs.end(), b) == sibs.end()) {
    throw RuleViolation(
        "R3",
        "FCMs " + hierarchy_->get(a).name + " and " +
            hierarchy_->get(b).name +
            " are not siblings; merge only integrates siblings (use "
            "integrate_across_parents to satisfy R4 first)");
  }
}

void Integrator::push_retests_for(FcmId id, const std::string& reason) {
  // R5: the FCM itself...
  retests_.push_back(RetestObligation{id, FcmId::invalid(), reason});
  const FcmId parent = hierarchy_->parent(id);
  if (!parent.valid()) return;
  // ...its parent (and only its parent)...
  retests_.push_back(RetestObligation{
      parent, FcmId::invalid(), reason + " (parent of modified FCM)"});
  // ...including the interfaces with its siblings.
  for (const FcmId sibling : hierarchy_->siblings(id)) {
    retests_.push_back(
        RetestObligation{id, sibling, reason + " (sibling interface)"});
  }
}

FcmId Integrator::merge(FcmId a, FcmId b, const std::string& merged_name) {
  require_siblings(a, b);
  const FcmId result = hierarchy_->absorb_sibling(a, b, merged_name);
  log_.push_back(IntegrationOp{CompositionKind::kMerge, {a, b}, result,
                               "horizontal merge"});
  push_retests_for(result, "merged " + hierarchy_->get(result).name);
  return result;
}

FcmId Integrator::group(const std::vector<FcmId>& members,
                        std::string parent_name,
                        Attributes parent_attributes) {
  FCM_REQUIRE(!members.empty(), "grouping requires at least one member");
  const Level member_level = hierarchy_->get(members.front()).level;
  Attributes attrs = parent_attributes;
  for (const FcmId member : members) {
    const Fcm& fcm = hierarchy_->get(member);
    FCM_REQUIRE(fcm.level == member_level,
                "grouped members must share one level");
    attrs = combine(attrs, fcm.attributes);
  }
  const FcmId parent = hierarchy_->create(
      std::move(parent_name), parent_level(member_level), attrs);
  for (const FcmId member : members) hierarchy_->attach(member, parent);
  log_.push_back(IntegrationOp{CompositionKind::kGroup, members, parent,
                               "vertical grouping"});
  push_retests_for(parent, "grouped new parent " +
                               hierarchy_->get(parent).name);
  return parent;
}

FcmId Integrator::integrate_across_parents(FcmId a, FcmId b,
                                           const std::string& merged_name) {
  const FcmId pa = hierarchy_->parent(a);
  const FcmId pb = hierarchy_->parent(b);
  FCM_REQUIRE(hierarchy_->get(a).level == hierarchy_->get(b).level,
              "cross-parent integration requires FCMs at the same level");
  if (pa != pb) {
    FCM_REQUIRE(pa.valid() && pb.valid(),
                "cross-parent integration requires both FCMs to have "
                "parents (roots are already siblings)");
    // R4: integrate the parents first, recursively up the hierarchy.
    integrate_across_parents(pa, pb, {});
  }
  return merge(a, b, merged_name);
}

FcmId Integrator::convert_processes_to_tasks(
    const std::vector<FcmId>& processes, std::string container_name) {
  FCM_REQUIRE(processes.size() >= 2,
              "communication demotion involves at least two processes");
  for (const FcmId id : processes) {
    const Fcm& fcm = hierarchy_->get(id);
    FCM_REQUIRE(fcm.level == Level::kProcess,
                fcm.name + " is not a process-level FCM");
    FCM_REQUIRE(!hierarchy_->parent(id).valid(),
                fcm.name + " already has a parent");
    FCM_REQUIRE(hierarchy_->children(id).empty(),
                fcm.name + " has internal structure; demote its tasks "
                           "explicitly before converting");
  }
  // The container starts empty; absorbing each process folds its
  // attributes in exactly once (combine aggregates throughput, so
  // pre-combining would double-count).
  const FcmId container =
      hierarchy_->create(std::move(container_name), Level::kProcess);
  std::vector<FcmId> tasks;
  for (const FcmId id : processes) {
    const Fcm original = hierarchy_->get(id);  // copy before mutation
    const FcmId task = hierarchy_->create(original.name + ".task",
                                          Level::kTask, original.attributes,
                                          original.isolation);
    hierarchy_->attach(task, container);
    tasks.push_back(task);
    // The old process FCM dissolves into the new task.
    hierarchy_->absorb_sibling(container, id, hierarchy_->get(container).name);
  }
  log_.push_back(IntegrationOp{CompositionKind::kGroup, processes, container,
                               "process-to-task communication demotion"});
  push_retests_for(container, "converted " + std::to_string(tasks.size()) +
                                  " processes into tasks");
  return container;
}

FcmId Integrator::duplicate_for(FcmId source, FcmId new_parent) {
  const FcmId copy = hierarchy_->clone_subtree(source, new_parent);
  log_.push_back(IntegrationOp{
      CompositionKind::kGroup, {source}, copy,
      "duplicated into " + hierarchy_->get(new_parent).name});
  push_retests_for(copy, "duplicated " + hierarchy_->get(source).name);
  return copy;
}

std::vector<RetestObligation> Integrator::modify(FcmId id,
                                                 const std::string& reason) {
  const std::size_t before = retests_.size();
  push_retests_for(id, reason);
  return {retests_.begin() + static_cast<std::ptrdiff_t>(before),
          retests_.end()};
}

}  // namespace fcm::core
