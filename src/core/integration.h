// Integration operations: merging, grouping, and rules R3–R5.
//
// §4 defines two composition mechanisms — "In merging, boundaries between
// constituent FCMs disappear ... In contrast, grouping allows FCMs to retain
// their mutual interface" — and constrains them:
//   R3: an FCM can be merged only with its siblings;
//   R4: if children of different parents are integrated, their parents must
//       be integrated;
//   R5: whenever an FCM is modified, its parent (and only its parent) must
//       be retested, including the interfaces with its siblings.
// `Integrator` applies these operations against an FcmHierarchy, records an
// audit log, and emits the R5 retest obligations for every mutation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/hierarchy.h"

namespace fcm::core {

/// The two composition mechanisms of §4.
enum class CompositionKind : std::uint8_t {
  kMerge,  ///< boundaries disappear; primarily horizontal integration
  kGroup,  ///< interfaces retained; usually vertical integration
};

const char* to_string(CompositionKind kind) noexcept;

/// One recorded integration operation.
struct IntegrationOp {
  CompositionKind kind;
  std::vector<FcmId> inputs;
  FcmId result;
  std::string note;
};

std::ostream& operator<<(std::ostream& os, const IntegrationOp& op);

/// An R5 retest obligation produced by a mutation.
struct RetestObligation {
  /// The FCM whose internals or interfaces must be re-verified.
  FcmId subject;
  /// Sibling whose interface with `subject` must be re-verified; invalid id
  /// for a module-internal retest.
  FcmId interface_with;
  std::string reason;
};

/// Applies rule-checked integration operations to a hierarchy.
class Integrator {
 public:
  explicit Integrator(FcmHierarchy& hierarchy) : hierarchy_(&hierarchy) {}

  /// Horizontal integration by merging (R3). `a` and `b` must be siblings:
  /// children of the same parent, or parentless FCMs of the same level.
  /// Returns the surviving FCM id. Emits R5 obligations for the parent.
  FcmId merge(FcmId a, FcmId b, const std::string& merged_name = {});

  /// Vertical integration by grouping: creates a new FCM named
  /// `parent_name` one level above the members and attaches them (R1/R2
  /// enforced by the hierarchy). All members must be parentless and at the
  /// same level.
  FcmId group(const std::vector<FcmId>& members, std::string parent_name,
              Attributes parent_attributes = {});

  /// Integrates two FCMs whose parents differ, enforcing R4 by merging the
  /// parent chains bottom-up first ("the parent FCMs can also be integrated
  /// to form a single parent FCM"), then merging `a` and `b`.
  FcmId integrate_across_parents(FcmId a, FcmId b,
                                 const std::string& merged_name = {});

  /// The duplication alternative to R4: clone `source`'s subtree under
  /// `new_parent` instead of sharing it ("a copy of the procedure can be
  /// inserted separately into each"). Returns the clone's id.
  FcmId duplicate_for(FcmId source, FcmId new_parent);

  /// §3.2's communication demotion: "If two process level FCMs need to
  /// communicate, they are converted into two (or more) task level FCMs
  /// within the same process. Thus, faults transmissible via direct
  /// communication need to be addressed only at task level, not at process
  /// level." Creates a process named `container_name`; each input process
  /// becomes a task FCM under it carrying the process's attributes. Input
  /// processes must be leaves (their internal structure would otherwise
  /// shift levels, which the hierarchy forbids) and parentless. Returns the
  /// new container process.
  FcmId convert_processes_to_tasks(const std::vector<FcmId>& processes,
                                   std::string container_name);

  /// Records a modification of `id` and returns the R5 retest set: the FCM
  /// itself, its parent, and the parent-level interfaces with the FCM's
  /// siblings. "Whenever a FCM is modified, its parent FCM, and only its
  /// parent, also needs to be tested, including the interfaces with its
  /// siblings."
  std::vector<RetestObligation> modify(FcmId id, const std::string& reason);

  /// All operations applied so far, in order.
  [[nodiscard]] const std::vector<IntegrationOp>& log() const noexcept {
    return log_;
  }

  /// All outstanding retest obligations accumulated by mutations.
  [[nodiscard]] const std::vector<RetestObligation>& pending_retests()
      const noexcept {
    return retests_;
  }

  /// Discharges (clears) all pending retest obligations, e.g. after a V&V
  /// campaign has run them.
  void discharge_retests() { retests_.clear(); }

 private:
  void require_siblings(FcmId a, FcmId b) const;
  void push_retests_for(FcmId id, const std::string& reason);

  FcmHierarchy* hierarchy_;
  std::vector<IntegrationOp> log_;
  std::vector<RetestObligation> retests_;
};

}  // namespace fcm::core
