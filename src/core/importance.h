// Node importance.
//
// "Each node in the graph has an importance value, based on its attributes.
// The importance I_i of node N_i is a weighted sum of its attribute values,
// using predefined static relative weights." (paper §5.1)
//
// Attributes live on incommensurable scales (ordinal criticality, replica
// counts, microsecond slacks, msgs/sec), so each contribution is normalized
// before weighting: criticality/replication/security relative to a declared
// scale maximum, timing as urgency = 1 − slack/window, throughput and comm
// rate relative to declared capacity figures.
#pragma once

#include "core/attributes.h"

namespace fcm::core {

/// Static relative weights and normalization scales for the importance sum.
/// Defaults emphasize criticality, then fault tolerance, then timing — the
/// priority order the paper's Approach B walks through.
struct ImportanceWeights {
  double criticality = 0.50;
  double replication = 0.20;
  double timing = 0.15;
  double throughput = 0.05;
  double security = 0.05;
  double comm_rate = 0.05;

  /// Normalization scales: the attribute value that maps to 1.0. For
  /// replication, simplex (1) maps to 0.0 and the scale maximum to 1.0.
  Criticality criticality_scale = 10;
  ReplicationDegree replication_scale = 3;
  double throughput_scale = 1000.0;
  SecurityLevel security_scale = 3;
  double comm_rate_scale = 1000.0;
};

/// Timing urgency in [0,1]: 0 when the window is all slack, 1 when the
/// computation exactly fills the [EST,TCD] window. Modules without timing
/// constraints score 0.
double timing_urgency(const Attributes& attrs) noexcept;

/// The weighted attribute sum I_i. Monotone in every attribute.
double importance(const Attributes& attrs,
                  const ImportanceWeights& weights = {});

}  // namespace fcm::core
