// Isolation techniques per hierarchy level.
//
// "The isolation techniques are different for different levels (e.g., hiding
// variables at the procedure level, or separating memory at the process
// level)." (§3) and §4.2.2–4.2.3 enumerate the influence factors each
// technique attacks. Each technique carries a transmission-reduction factor:
// the multiplier applied to the relevant p_{i,2} (fault transmission
// probability) when the technique is enabled. Values are configurable —
// the paper leaves them to be "determined using field data and estimations".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fcm::core {

/// The isolation mechanisms the paper names, across all three levels.
enum class IsolationTechnique : std::uint8_t {
  // Procedure level (§3.3, §4.2.2)
  kInformationHiding,   ///< OO information hiding on shared state
  kParameterChecking,   ///< range checks on passed parameters
  kStatelessProcedures, ///< no static variables -> freely replicable
  // Task level (§3.2, §4.2.3)
  kRecoveryBlocks,      ///< acceptance test + alternates
  kNVersionProgramming, ///< diverse variants + voting
  kPreemptiveScheduling,///< bounds timing-fault transmission
  // Process level (§3.1)
  kMemorySeparation,    ///< disjoint memory blocks ("memory footprints")
  kResourceQuotas,      ///< guards against CPU/resource overuse
  kMessageChecking,     ///< validity checks on inter-process messages
};

const char* to_string(IsolationTechnique technique) noexcept;
std::ostream& operator<<(std::ostream& os, IsolationTechnique technique);

/// The set of techniques active at one FCM boundary, with the configured
/// effectiveness of each (the factor multiplying the transmission
/// probability of the fault class the technique addresses; 0 = perfect
/// isolation, 1 = no effect).
class IsolationConfig {
 public:
  IsolationConfig() = default;

  /// Enables `technique` with the given transmission-reduction factor in
  /// [0,1]. Re-enabling overwrites the factor.
  void enable(IsolationTechnique technique, double reduction_factor);

  void disable(IsolationTechnique technique);

  [[nodiscard]] bool enabled(IsolationTechnique technique) const noexcept;

  /// The reduction factor for `technique` (1.0 when disabled).
  [[nodiscard]] double factor(IsolationTechnique technique) const noexcept;

  /// Number of enabled techniques.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  auto operator<=>(const IsolationConfig&) const = default;

 private:
  struct Entry {
    IsolationTechnique technique;
    double factor;
    auto operator<=>(const Entry&) const = default;
  };
  // Sorted by technique; tiny vectors beat maps at this scale.
  std::vector<Entry> entries_;
};

}  // namespace fcm::core
