// Separation: the transitive closure of influence (Eq. 3).
//
// "Separation of FCMs is the probability of one FCM *not* affecting another
// if all other FCMs at the same level are considered":
//   FCMi ∘ FCMj = 1 − (P_ij + Σ_k P_ik P_kj + Σ_l Σ_k P_ik P_kl P_lj + …)
// The series is evaluated through matrix powers, truncated at a configured
// order or once terms drop below epsilon ("at some point, higher-order terms
// are likely to be small enough to be neglected"). The raw series can exceed
// 1 for strongly coupled systems (it is a union bound, not a probability);
// separation clamps at 0 accordingly.
#pragma once

#include <unordered_map>

#include "common/probability.h"
#include "core/influence.h"
#include "graph/matrix.h"
#include "graph/series.h"

namespace fcm::core {

/// Truncation and kernel controls for the Eq. 3 series.
struct SeparationOptions {
  /// Highest matrix power included (1 = direct influence only).
  int max_order = 6;
  /// Stop early once a term's largest entry falls below this.
  double epsilon = 1e-9;
  /// Worker threads for the series kernels (0 = hardware concurrency). The
  /// analysis is bitwise identical for every value.
  std::uint32_t threads = 1;
  /// Multiply kernel (auto = dense/sparse by fill ratio).
  graph::SeriesKernel kernel = graph::SeriesKernel::kAuto;

  /// Equality compares only the fields that select the mathematical result;
  /// threads and kernel never change the bitwise output, so cache entries
  /// computed under different execution plans are interchangeable.
  [[nodiscard]] bool operator==(const SeparationOptions& other)
      const noexcept {
    return max_order == other.max_order && epsilon == other.epsilon;
  }
};

/// Precomputed separation over one influence model.
class SeparationAnalysis {
 public:
  /// Evaluates the series for every ordered member pair.
  explicit SeparationAnalysis(const InfluenceModel& model,
                              SeparationOptions options = {});

  /// Evaluates from a raw influence matrix (members indexed 0..n-1).
  explicit SeparationAnalysis(const graph::Matrix& influence_matrix,
                              SeparationOptions options = {});

  /// Number of members.
  [[nodiscard]] std::size_t size() const noexcept { return series_.size(); }

  /// The summed interaction term Σ (before complementing): the probability
  /// bound on i affecting j through any chain.
  [[nodiscard]] double interaction(std::size_t i, std::size_t j) const;

  /// Separation FCMi ∘ FCMj = clamp(1 − interaction). Diagonal is 0 by
  /// convention (a module is never separated from itself).
  [[nodiscard]] Probability separation(std::size_t i, std::size_t j) const;

  /// Smallest separation over all ordered pairs — the system's weakest
  /// containment boundary.
  [[nodiscard]] Probability min_separation() const;

 private:
  graph::Matrix series_;
};

/// Memoizes SeparationAnalysis instances so repeated Eq. 3 queries — the
/// planner scoring several heuristics, iterative what-if loops over one
/// model — do not recompute the transitive power series. Entries are keyed
/// on a *content* hash of the influence matrix (for raw matrices the hash is
/// cached inside Matrix, so an unchanged matrix is never re-hashed) plus
/// the truncation options; keying on content rather than object identity
/// means a destroyed model whose address is reused can never resurrect a
/// dead entry. Lookups go through a hash-map index — O(1) per query instead
/// of a scan over the capacity. Small LRU; evictions are counted in the
/// per-instance stats and mirrored into the fcm::obs registry.
class SeparationCache {
 public:
  explicit SeparationCache(std::size_t capacity = 8);

  /// The analysis for the model's *current* content. Recomputes (and
  /// counts a miss) when the model's influence matrix changed since the
  /// entry was cached.
  const SeparationAnalysis& get(const InfluenceModel& model,
                                SeparationOptions options = {});

  /// The analysis for a raw influence matrix, keyed on a content hash of
  /// its dimensions and entries.
  const SeparationAnalysis& get(const graph::Matrix& influence_matrix,
                                SeparationOptions options = {});

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

 private:
  struct Entry {
    std::uint64_t key;  // content/model key folded with the options
    std::uint64_t last_used;
    SeparationAnalysis analysis;
  };

  template <typename Make>
  const SeparationAnalysis& lookup(std::uint64_t key, Make make);

  std::vector<Entry> entries_;            // slots; never reallocates
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> slot
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace fcm::core
