// Separation: the transitive closure of influence (Eq. 3).
//
// "Separation of FCMs is the probability of one FCM *not* affecting another
// if all other FCMs at the same level are considered":
//   FCMi ∘ FCMj = 1 − (P_ij + Σ_k P_ik P_kj + Σ_l Σ_k P_ik P_kl P_lj + …)
// The series is evaluated through matrix powers, truncated at a configured
// order or once terms drop below epsilon ("at some point, higher-order terms
// are likely to be small enough to be neglected"). The raw series can exceed
// 1 for strongly coupled systems (it is a union bound, not a probability);
// separation clamps at 0 accordingly.
#pragma once

#include "common/probability.h"
#include "core/influence.h"
#include "graph/matrix.h"

namespace fcm::core {

/// Truncation controls for the Eq. 3 series.
struct SeparationOptions {
  /// Highest matrix power included (1 = direct influence only).
  int max_order = 6;
  /// Stop early once a term's largest entry falls below this.
  double epsilon = 1e-9;
};

/// Precomputed separation over one influence model.
class SeparationAnalysis {
 public:
  /// Evaluates the series for every ordered member pair.
  explicit SeparationAnalysis(const InfluenceModel& model,
                              SeparationOptions options = {});

  /// Evaluates from a raw influence matrix (members indexed 0..n-1).
  explicit SeparationAnalysis(const graph::Matrix& influence_matrix,
                              SeparationOptions options = {});

  /// Number of members.
  [[nodiscard]] std::size_t size() const noexcept { return series_.size(); }

  /// The summed interaction term Σ (before complementing): the probability
  /// bound on i affecting j through any chain.
  [[nodiscard]] double interaction(std::size_t i, std::size_t j) const;

  /// Separation FCMi ∘ FCMj = clamp(1 − interaction). Diagonal is 0 by
  /// convention (a module is never separated from itself).
  [[nodiscard]] Probability separation(std::size_t i, std::size_t j) const;

  /// Smallest separation over all ordered pairs — the system's weakest
  /// containment boundary.
  [[nodiscard]] Probability min_separation() const;

 private:
  graph::Matrix series_;
};

}  // namespace fcm::core
