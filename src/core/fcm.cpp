#include "core/fcm.h"

#include <ostream>

#include "common/error.h"

namespace fcm::core {

Level parent_level(Level level) {
  switch (level) {
    case Level::kProcedure:
      return Level::kTask;
    case Level::kTask:
      return Level::kProcess;
    case Level::kProcess:
      throw InvalidArgument("processes are the top of the FCM hierarchy");
  }
  throw InvalidArgument("unknown level");
}

Level child_level(Level level) {
  switch (level) {
    case Level::kProcess:
      return Level::kTask;
    case Level::kTask:
      return Level::kProcedure;
    case Level::kProcedure:
      throw InvalidArgument("procedures are the bottom of the FCM hierarchy");
  }
  throw InvalidArgument("unknown level");
}

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kProcedure:
      return "procedure";
    case Level::kTask:
      return "task";
    case Level::kProcess:
      return "process";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Level level) {
  return os << to_string(level);
}

const char* Fcm::fault_class() const noexcept {
  switch (level) {
    case Level::kProcedure:
      return "erroneous data via variables or return values";
    case Level::kTask:
      return "shared data/memory, message and timing faults within a process";
    case Level::kProcess:
      return "shared HW resource faults (memory footprints, scheduling, "
             "communication)";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Fcm& fcm) {
  return os << to_string(fcm.level) << ' ' << fcm.name << ' ' << fcm.id << ' '
            << fcm.attributes;
}

}  // namespace fcm::core
