#include "core/separation.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace fcm::core {

SeparationAnalysis::SeparationAnalysis(const InfluenceModel& model,
                                       SeparationOptions options)
    : SeparationAnalysis(model.to_matrix(), options) {}

SeparationAnalysis::SeparationAnalysis(const graph::Matrix& influence_matrix,
                                       SeparationOptions options)
    : series_(graph::power_series_sum(influence_matrix, options.max_order,
                                      options.epsilon)) {}

double SeparationAnalysis::interaction(std::size_t i, std::size_t j) const {
  return series_.at(i, j);
}

Probability SeparationAnalysis::separation(std::size_t i,
                                           std::size_t j) const {
  if (i == j) return Probability::zero();
  return Probability::clamped(1.0 - series_.at(i, j));
}

Probability SeparationAnalysis::min_separation() const {
  FCM_REQUIRE(series_.size() >= 2, "separation needs at least two members");
  double min_value = 1.0;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    for (std::size_t j = 0; j < series_.size(); ++j) {
      if (i == j) continue;
      min_value = std::min(min_value, separation(i, j).value());
    }
  }
  return Probability::clamped(min_value);
}

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ (value & 0xFFu)) * kFnvPrime;
    value >>= 8u;
  }
  return hash;
}

std::uint64_t bits_of(double value) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::uint64_t model_key(const InfluenceModel& model) noexcept {
  // Pointer identity x revision: two different live models never collide,
  // and a mutated model never reuses its stale entry.
  std::uint64_t hash = fnv_mix(
      kFnvOffset, static_cast<std::uint64_t>(
                      reinterpret_cast<std::uintptr_t>(&model)));
  return fnv_mix(hash, model.revision());
}

std::uint64_t matrix_key(const graph::Matrix& m) noexcept {
  std::uint64_t hash = fnv_mix(kFnvOffset ^ 0x9E3779B97F4A7C15ULL,
                               static_cast<std::uint64_t>(m.size()));
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      hash = fnv_mix(hash, bits_of(m.at(i, j)));
    }
  }
  return hash;
}

}  // namespace

SeparationCache::SeparationCache(std::size_t capacity)
    : capacity_(capacity) {
  FCM_REQUIRE(capacity_ >= 1, "separation cache capacity must be positive");
}

template <typename Make>
const SeparationAnalysis& SeparationCache::lookup(std::uint64_t key,
                                                  SeparationOptions options,
                                                  Make make) {
  ++tick_;
  for (Entry& entry : entries_) {
    if (entry.key == key && entry.options == options) {
      ++stats_.hits;
      entry.last_used = tick_;
      return entry.analysis;
    }
  }
  ++stats_.misses;
  if (entries_.size() >= capacity_) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].last_used < entries_[oldest].last_used) oldest = i;
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(oldest));
    ++stats_.evictions;
  }
  entries_.push_back(Entry{key, options, tick_, make()});
  return entries_.back().analysis;
}

const SeparationAnalysis& SeparationCache::get(const InfluenceModel& model,
                                               SeparationOptions options) {
  return lookup(model_key(model), options,
                [&] { return SeparationAnalysis(model, options); });
}

const SeparationAnalysis& SeparationCache::get(
    const graph::Matrix& influence_matrix, SeparationOptions options) {
  return lookup(matrix_key(influence_matrix), options, [&] {
    return SeparationAnalysis(influence_matrix, options);
  });
}

}  // namespace fcm::core
