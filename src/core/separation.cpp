#include "core/separation.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/simd.h"
#include "obs/obs.h"

namespace fcm::core {

namespace {

graph::SeriesOptions to_series_options(const SeparationOptions& options) {
  graph::SeriesOptions series;
  series.max_order = options.max_order;
  series.epsilon = options.epsilon;
  series.threads = options.threads;
  series.kernel = options.kernel;
  return series;
}

}  // namespace

SeparationAnalysis::SeparationAnalysis(const InfluenceModel& model,
                                       SeparationOptions options)
    : SeparationAnalysis(model.to_matrix(), options) {}

SeparationAnalysis::SeparationAnalysis(const graph::Matrix& influence_matrix,
                                       SeparationOptions options)
    : series_(graph::power_series_sum(influence_matrix,
                                      to_series_options(options))) {}

double SeparationAnalysis::interaction(std::size_t i, std::size_t j) const {
  return series_.at(i, j);
}

Probability SeparationAnalysis::separation(std::size_t i,
                                           std::size_t j) const {
  if (i == j) return Probability::zero();
  return Probability::clamped(1.0 - series_.at(i, j));
}

Probability SeparationAnalysis::min_separation() const {
  FCM_REQUIRE(series_.size() >= 2, "separation needs at least two members");
  // Batched row kernel: min over clamp01(1 - s[i][j]) for j != i. The fold
  // is reorder-safe — every operand is clamped to [0,1] first (NaN -> 0, the
  // Probability::clamped contract), and min over non-NaN values is
  // order-independent — so splitting each row at the diagonal and
  // vectorizing inside the segments reproduces the serial scan exactly.
  const std::size_t n = series_.size();
  const double* data = series_.data();
  const simd::KernelTable& kernels = simd::kernels();
  double min_value = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = data + i * n;
    min_value = std::min(min_value, kernels.min_complement(row, i));
    min_value = std::min(
        min_value, kernels.min_complement(row + i + 1, n - i - 1));
  }
  return Probability::clamped(min_value);
}

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ (value & 0xFFu)) * kFnvPrime;
    value >>= 8u;
  }
  return hash;
}

std::uint64_t bits_of(double value) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::uint64_t model_key(const InfluenceModel& model) {
  // Content identity: hash the influence matrix the analysis is actually
  // computed from. The previous address-x-revision key had an ABA hazard —
  // a destroyed model whose heap address was reused by a fresh model at the
  // same revision count resurrected the dead model's entry. Content keying
  // cannot dangle (and lets two equal models share one entry). to_matrix()
  // costs O(n²) memoized influence lookups per query; the raw-matrix
  // overload below stays O(1) via the hash cached inside Matrix.
  return fnv_mix(kFnvOffset, model.to_matrix().content_hash());
}

// Folds the result-selecting options fields (and only those — threads and
// kernel choice never change the analysis) into the entry key.
std::uint64_t with_options(std::uint64_t key,
                           const SeparationOptions& options) noexcept {
  key = fnv_mix(key, static_cast<std::uint64_t>(options.max_order));
  return fnv_mix(key, bits_of(options.epsilon));
}

}  // namespace

SeparationCache::SeparationCache(std::size_t capacity)
    : capacity_(capacity) {
  FCM_REQUIRE(capacity_ >= 1, "separation cache capacity must be positive");
  // Entries never move after insertion, so returned references stay valid
  // until their slot is evicted.
  entries_.reserve(capacity_);
}

template <typename Make>
const SeparationAnalysis& SeparationCache::lookup(std::uint64_t key,
                                                  Make make) {
  ++tick_;
  if (const auto it = index_.find(key); it != index_.end()) {
    ++stats_.hits;
    FCM_OBS_COUNT("separation_cache.hits", 1);
    Entry& entry = entries_[it->second];
    entry.last_used = tick_;
    return entry.analysis;
  }
  ++stats_.misses;
  FCM_OBS_COUNT("separation_cache.misses", 1);
  std::size_t slot;
  if (entries_.size() >= capacity_) {
    // Evict the LRU slot and reuse it in place.
    slot = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].last_used < entries_[slot].last_used) slot = i;
    }
    index_.erase(entries_[slot].key);
    ++stats_.evictions;
    FCM_OBS_COUNT("separation_cache.evictions", 1);
    entries_[slot] = Entry{key, tick_, make()};
  } else {
    slot = entries_.size();
    entries_.push_back(Entry{key, tick_, make()});
  }
  index_.emplace(key, slot);
  return entries_[slot].analysis;
}

const SeparationAnalysis& SeparationCache::get(const InfluenceModel& model,
                                               SeparationOptions options) {
  return lookup(with_options(model_key(model), options),
                [&] { return SeparationAnalysis(model, options); });
}

const SeparationAnalysis& SeparationCache::get(
    const graph::Matrix& influence_matrix, SeparationOptions options) {
  // content_hash() is cached inside Matrix, so a repeated query on an
  // unchanged matrix object skips the O(n²) re-hash entirely.
  return lookup(
      with_options(influence_matrix.content_hash(), options), [&] {
        return SeparationAnalysis(influence_matrix, options);
      });
}

}  // namespace fcm::core
