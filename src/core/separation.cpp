#include "core/separation.h"

#include <algorithm>

#include "common/error.h"

namespace fcm::core {

SeparationAnalysis::SeparationAnalysis(const InfluenceModel& model,
                                       SeparationOptions options)
    : SeparationAnalysis(model.to_matrix(), options) {}

SeparationAnalysis::SeparationAnalysis(const graph::Matrix& influence_matrix,
                                       SeparationOptions options)
    : series_(graph::power_series_sum(influence_matrix, options.max_order,
                                      options.epsilon)) {}

double SeparationAnalysis::interaction(std::size_t i, std::size_t j) const {
  return series_.at(i, j);
}

Probability SeparationAnalysis::separation(std::size_t i,
                                           std::size_t j) const {
  if (i == j) return Probability::zero();
  return Probability::clamped(1.0 - series_.at(i, j));
}

Probability SeparationAnalysis::min_separation() const {
  FCM_REQUIRE(series_.size() >= 2, "separation needs at least two members");
  double min_value = 1.0;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    for (std::size_t j = 0; j < series_.size(); ++j) {
      if (i == j) continue;
      min_value = std::min(min_value, separation(i, j).value());
    }
  }
  return Probability::clamped(min_value);
}

}  // namespace fcm::core
