#include "core/influence.h"

#include <algorithm>

#include "common/error.h"
#include "common/simd.h"

namespace fcm::core {

namespace {
std::uint64_t pair_key(std::size_t from, std::size_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

// Eq. 2 over a pair's factors with the Eq. 1 triple products evaluated as
// one SoA batch: out[i] = (occ[i] * trans[i]) * eff[i], the exact
// association order of Probability::both chaining, so each batched product
// is bit-identical to InfluenceFactor::probability(). Factors in [0,1]
// multiply into [0,1], so Probability::clamped is a bitwise pass-through.
Probability combine_factors(const std::vector<InfluenceFactor>& factors) {
  const std::size_t m = factors.size();
  std::vector<double> soa(4 * m);
  double* occurrence = soa.data();
  double* transmission = occurrence + m;
  double* effect = transmission + m;
  double* product = effect + m;
  for (std::size_t i = 0; i < m; ++i) {
    occurrence[i] = factors[i].occurrence.value();
    transmission[i] = factors[i].transmission.value();
    effect[i] = factors[i].effect.value();
  }
  simd::kernels().triple_product(occurrence, transmission, effect, product,
                                 m);
  std::vector<Probability> ps;
  ps.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    ps.push_back(Probability::clamped(product[i]));
  }
  return any_of(ps);  // Eq. 2
}
}  // namespace

const char* to_string(FactorKind kind) noexcept {
  switch (kind) {
    case FactorKind::kParameterPassing:
      return "parameter-passing";
    case FactorKind::kGlobalVariables:
      return "global-variables";
    case FactorKind::kSharedMemory:
      return "shared-memory";
    case FactorKind::kMessagePassing:
      return "message-passing";
    case FactorKind::kTiming:
      return "timing";
    case FactorKind::kResourceContention:
      return "resource-contention";
    case FactorKind::kOther:
      return "other";
  }
  return "?";
}

std::optional<IsolationTechnique> mitigation_for(FactorKind kind) noexcept {
  switch (kind) {
    case FactorKind::kParameterPassing:
      return IsolationTechnique::kParameterChecking;
    case FactorKind::kGlobalVariables:
      return IsolationTechnique::kInformationHiding;
    case FactorKind::kSharedMemory:
      return IsolationTechnique::kMemorySeparation;
    case FactorKind::kMessagePassing:
      return IsolationTechnique::kMessageChecking;
    case FactorKind::kTiming:
      return IsolationTechnique::kPreemptiveScheduling;
    case FactorKind::kResourceContention:
      return IsolationTechnique::kResourceQuotas;
    case FactorKind::kOther:
      return std::nullopt;
  }
  return std::nullopt;
}

Probability InfluenceFactor::probability() const noexcept {
  // Eq. 1: p_i = p_{i,1} * p_{i,2} * p_{i,3}.
  return occurrence.both(transmission).both(effect);
}

Probability InfluenceFactor::probability(
    const IsolationConfig& source_isolation) const noexcept {
  const auto technique = mitigation_for(kind);
  double p2 = transmission.value();
  if (technique && source_isolation.enabled(*technique)) {
    p2 *= source_isolation.factor(*technique);
  }
  return occurrence.both(Probability::clamped(p2)).both(effect);
}

std::size_t InfluenceModel::add_member(FcmId id, std::string name) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id == id) return i;
  }
  members_.push_back(Member{id, std::move(name)});
  // A new member changes the model's shape (matrix dimensions) even though
  // no cached pair value becomes stale; bump the revision for shape-keyed
  // consumers like SeparationCache.
  ++revision_;
  return members_.size() - 1;
}

FcmId InfluenceModel::member(std::size_t index) const {
  FCM_REQUIRE(index < members_.size(), "member index out of range");
  return members_[index].id;
}

const std::string& InfluenceModel::member_name(std::size_t index) const {
  FCM_REQUIRE(index < members_.size(), "member index out of range");
  return members_[index].name;
}

std::size_t InfluenceModel::index_of(FcmId id) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id == id) return i;
  }
  throw NotFound("FCM is not a member of this influence model");
}

const InfluenceModel::PairData* InfluenceModel::pair(FcmId from,
                                                     FcmId to) const {
  const auto it = pairs_.find(pair_key(index_of(from), index_of(to)));
  return it == pairs_.end() ? nullptr : &it->second;
}

InfluenceModel::PairData& InfluenceModel::pair_mutable(FcmId from, FcmId to) {
  FCM_REQUIRE(from != to, "an FCM does not influence itself in the model");
  return pairs_[pair_key(index_of(from), index_of(to))];
}

void InfluenceModel::add_factor(FcmId from, FcmId to, InfluenceFactor factor) {
  PairData& data = pair_mutable(from, to);
  FCM_REQUIRE(!data.direct.has_value(),
              "pair already carries a direct influence value");
  data.factors.push_back(std::move(factor));
  ++revision_;
  cache_stats_.invalidations +=
      value_cache_.erase(pair_key(index_of(from), index_of(to)));
}

void InfluenceModel::set_direct(FcmId from, FcmId to, Probability influence) {
  PairData& data = pair_mutable(from, to);
  FCM_REQUIRE(data.factors.empty(),
              "pair already carries influence factors");
  data.direct = influence;
  ++revision_;
  cache_stats_.invalidations +=
      value_cache_.erase(pair_key(index_of(from), index_of(to)));
}

Probability InfluenceModel::influence(FcmId from, FcmId to) const {
  const std::uint64_t key = pair_key(index_of(from), index_of(to));
  if (const auto cached = value_cache_.find(key);
      cached != value_cache_.end()) {
    ++cache_stats_.hits;
    return cached->second;
  }
  ++cache_stats_.misses;
  Probability result = Probability::zero();
  if (const auto it = pairs_.find(key); it != pairs_.end()) {
    const PairData& data = it->second;
    if (data.direct) {
      result = *data.direct;
    } else {
      result = combine_factors(data.factors);
    }
  }
  value_cache_.emplace(key, result);
  return result;
}

Probability InfluenceModel::influence(FcmId from, FcmId to,
                                      const IsolationConfig& isolation) const {
  const PairData* data = pair(from, to);
  if (data == nullptr) return Probability::zero();
  if (data->direct) return *data->direct;
  std::vector<Probability> ps;
  ps.reserve(data->factors.size());
  for (const InfluenceFactor& f : data->factors) {
    ps.push_back(f.probability(isolation));
  }
  return any_of(ps);
}

const std::vector<InfluenceFactor>& InfluenceModel::factors(FcmId from,
                                                            FcmId to) const {
  static const std::vector<InfluenceFactor> kEmpty;
  const PairData* data = pair(from, to);
  return data == nullptr ? kEmpty : data->factors;
}

double InfluenceModel::mutual_influence(FcmId a, FcmId b) const {
  return influence(a, b).value() + influence(b, a).value();
}

graph::Digraph InfluenceModel::to_graph() const {
  graph::Digraph g;
  for (const Member& m : members_) g.add_node(m.name);
  for (std::size_t from = 0; from < members_.size(); ++from) {
    for (std::size_t to = 0; to < members_.size(); ++to) {
      if (from == to) continue;
      const auto it = pairs_.find(pair_key(from, to));
      if (it == pairs_.end()) continue;
      const Probability p = influence(members_[from].id, members_[to].id);
      std::string label;
      for (const InfluenceFactor& f : it->second.factors) {
        if (!label.empty()) label += ',';
        label += to_string(f.kind);
      }
      g.add_edge(static_cast<graph::NodeIndex>(from),
                 static_cast<graph::NodeIndex>(to), p.value(),
                 std::move(label));
    }
  }
  return g;
}

graph::Matrix InfluenceModel::to_matrix() const {
  graph::Matrix m(members_.size());
  for (std::size_t from = 0; from < members_.size(); ++from) {
    for (std::size_t to = 0; to < members_.size(); ++to) {
      if (from == to) continue;
      const auto it = pairs_.find(pair_key(from, to));
      if (it == pairs_.end()) continue;
      m.at(from, to) =
          influence(members_[from].id, members_[to].id).value();
    }
  }
  return m;
}

}  // namespace fcm::core
