// The fault-containment module (FCM) entity.
//
// "To reduce the complexity of the dependable SW composition problem, it is
// desirable to have SW partitioned into fault containment modules (FCMs),
// which have associated characteristics, and interact in a desired manner."
// (paper §1.2). The hierarchy has exactly three levels (§3): procedures,
// tasks, processes — chosen deliberately by the authors; the level enum
// leaves arithmetic room for extensions (e.g. the object/class level the
// paper footnotes for OO designs).
#pragma once

#include <iosfwd>
#include <string>

#include "common/ids.h"
#include "core/attributes.h"
#include "core/isolation.h"

namespace fcm::core {

/// The three FCM hierarchy levels of Fig. 1, ordered bottom-up.
enum class Level : std::int8_t {
  kProcedure = 0,  ///< lowest: named callable module, no own thread
  kTask = 1,       ///< middle: lightweight thread, own stack and PC
  kProcess = 2,    ///< top: heavyweight process, own code and data
};

/// The level directly above, e.g. procedures integrate into tasks.
/// Throws InvalidArgument at the top of the hierarchy.
Level parent_level(Level level);

/// The level directly below. Throws InvalidArgument at the bottom.
Level child_level(Level level);

const char* to_string(Level level) noexcept;
std::ostream& operator<<(std::ostream& os, Level level);

/// One fault-containment module. FCMs are value-ish records owned by an
/// FcmHierarchy; identity is the FcmId.
struct Fcm {
  FcmId id;
  std::string name;
  Level level = Level::kProcedure;
  Attributes attributes;
  /// The isolation techniques applied at this FCM's boundary.
  IsolationConfig isolation;

  /// Fault classes handled at this level per §3.1–3.3 (diagnostic label).
  [[nodiscard]] const char* fault_class() const noexcept;
};

std::ostream& operator<<(std::ostream& os, const Fcm& fcm);

}  // namespace fcm::core
