// V&V obligation tracking.
//
// The hierarchy exists to localize verification: "each level represents a
// different level of abstraction, which simplifies V&V of FCMs at each
// level, by not having to consider lower levels; in addition, V&V of module
// dependability can be performed independently of other modules at the same
// level" (§4.1). `VerificationCampaign` materializes that: module
// obligations per FCM, interface obligations per sibling pair, incremental
// R5 re-certification after modifications, and a completion report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/integration.h"

namespace fcm::core {

/// Kinds of verification work items.
enum class ObligationKind : std::uint8_t {
  kModuleTest,     ///< the FCM in isolation (level-local fault class)
  kInterfaceTest,  ///< one ordered sibling interface
};

const char* to_string(ObligationKind kind) noexcept;

/// Status of one obligation.
enum class ObligationStatus : std::uint8_t { kPending, kPassed, kFailed };

/// A verification work item.
struct Obligation {
  std::size_t id = 0;
  ObligationKind kind = ObligationKind::kModuleTest;
  FcmId subject;
  FcmId counterpart;  ///< interface partner; invalid for module tests
  std::string reason;
  ObligationStatus status = ObligationStatus::kPending;
};

/// Manages verification obligations over a hierarchy's lifetime.
class VerificationCampaign {
 public:
  explicit VerificationCampaign(const FcmHierarchy& hierarchy)
      : hierarchy_(&hierarchy) {}

  /// Full initial certification: one module obligation per live FCM, one
  /// interface obligation per ordered sibling pair. Returns the number of
  /// obligations added.
  std::size_t plan_initial_certification();

  /// Incremental re-certification per R5 for a modified FCM: the module
  /// itself, its parent module, and its sibling interfaces. Returns the
  /// obligations added.
  std::size_t plan_modification(FcmId modified, const std::string& reason);

  /// Imports obligations emitted by an Integrator.
  std::size_t import(const std::vector<RetestObligation>& retests);

  /// Marks an obligation passed/failed.
  void record_result(std::size_t obligation_id, bool passed);

  [[nodiscard]] const std::vector<Obligation>& obligations() const noexcept {
    return items_;
  }

  [[nodiscard]] std::size_t pending_count() const noexcept;
  [[nodiscard]] std::size_t failed_count() const noexcept;

  /// True when every obligation has passed.
  [[nodiscard]] bool certified() const noexcept;

  /// Human-readable summary ("12/14 passed, 1 pending, 1 failed").
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t add(ObligationKind kind, FcmId subject, FcmId counterpart,
                  std::string reason);
  /// True when an equivalent pending obligation already exists.
  [[nodiscard]] bool has_pending(ObligationKind kind, FcmId subject,
                                 FcmId counterpart) const noexcept;

  const FcmHierarchy* hierarchy_;
  std::vector<Obligation> items_;
};

}  // namespace fcm::core
