// Influence: quantified interaction between sibling FCMs (§4.2).
//
// "Influence of one FCM on another is the probability of one FCM affecting
// another FCM at the same level if no third FCM at that level is considered."
// Each influence factor f_i (shared memory, parameter passing, global
// variables, message errors, timing faults, ...) carries three component
// probabilities (Eq. 1):
//    p_i = p_{i,1} (fault occurs in source)
//        * p_{i,2} (fault transmitted to target)
//        * p_{i,3} (transmitted fault manifests in target)
// and factors combine independently (Eq. 2):
//    FCMi -> FCMj = 1 − Π (1 − p_k).
// Influence is directional and generally asymmetric ("range checks are
// needed only when parameters are passed to a procedure, and not in the
// other direction").
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/probability.h"
#include "core/isolation.h"
#include "graph/digraph.h"
#include "graph/matrix.h"

namespace fcm::core {

/// The named fault-transmission mechanisms of §4.2.2–4.2.3.
enum class FactorKind : std::uint8_t {
  kParameterPassing,  ///< procedure level, f1
  kGlobalVariables,   ///< procedure level, f2 ("difficult to control")
  kSharedMemory,      ///< task/process level, f3
  kMessagePassing,    ///< task/process level, f4
  kTiming,            ///< task/process level, f5
  kResourceContention,///< process level (CPU/IO overuse)
  kOther,
};

const char* to_string(FactorKind kind) noexcept;

/// Counters exposed by the memoization layers (per-pair influence memo,
/// separation cache, clustering quotient cache) so benches, tests, and the
/// fcm_tool example can report cache effectiveness.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Which isolation technique mitigates each factor kind (multiplying its
/// transmission probability p_{i,2} by the technique's reduction factor).
std::optional<IsolationTechnique> mitigation_for(FactorKind kind) noexcept;

/// One influence factor between an ordered FCM pair.
struct InfluenceFactor {
  FactorKind kind = FactorKind::kOther;
  std::string label;
  Probability occurrence;    ///< p_{i,1} — from field data / testing
  Probability transmission;  ///< p_{i,2} — medium and data volume
  Probability effect;        ///< p_{i,3} — from fault injection

  /// Eq. 1 with no isolation in effect.
  [[nodiscard]] Probability probability() const noexcept;

  /// Eq. 1 with the source boundary's isolation reducing p_{i,2}.
  [[nodiscard]] Probability probability(
      const IsolationConfig& source_isolation) const noexcept;
};

/// The influence structure over one set of sibling FCMs. Members are
/// registered once; factors (or direct influence values) attach to ordered
/// member pairs.
class InfluenceModel {
 public:
  InfluenceModel() = default;

  /// Registers a member; returns its dense index. Idempotent per id.
  std::size_t add_member(FcmId id, std::string name);

  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }
  [[nodiscard]] FcmId member(std::size_t index) const;
  [[nodiscard]] const std::string& member_name(std::size_t index) const;
  [[nodiscard]] std::size_t index_of(FcmId id) const;

  /// Adds a factor contributing to influence(from -> to).
  void add_factor(FcmId from, FcmId to, InfluenceFactor factor);

  /// Sets a direct influence value for (from -> to), bypassing the factor
  /// decomposition (the §6 example: "influences have been randomly generated
  /// ... even relative values of the influence parameter suffice").
  /// Mutually exclusive with factors on the same pair.
  void set_direct(FcmId from, FcmId to, Probability influence);

  /// Eq. 2: combined influence of `from` on `to` (zero when no factors).
  /// Memoized per ordered pair: repeated queries (clustering heuristics,
  /// role summaries, matrix exports) hit a cache that is invalidated
  /// precisely when the pair's factors or direct value mutate. Not
  /// thread-safe — the memo mutates under a const interface.
  [[nodiscard]] Probability influence(FcmId from, FcmId to) const;

  /// Eq. 2 with the source FCM's isolation config applied to every factor.
  [[nodiscard]] Probability influence(FcmId from, FcmId to,
                                      const IsolationConfig& isolation) const;

  /// Factors recorded for the pair (empty for direct-valued pairs).
  [[nodiscard]] const std::vector<InfluenceFactor>& factors(FcmId from,
                                                            FcmId to) const;

  /// Mutual influence — "the sum of influences in each direction" (§6.1),
  /// the pairing key of heuristic H1.
  [[nodiscard]] double mutual_influence(FcmId a, FcmId b) const;

  /// The labeled directed influence graph of §4.2.4 (nodes = members in
  /// registration order, edge weights = influence, labels = factor kinds).
  [[nodiscard]] graph::Digraph to_graph() const;

  /// The influence matrix P with P[i][j] = influence(member i -> member j),
  /// indexed by registration order (input to separation analysis, Eq. 3).
  [[nodiscard]] graph::Matrix to_matrix() const;

  /// Monotone revision counter, bumped by every mutation (member, factor,
  /// or direct-value changes). External caches — SeparationCache, the
  /// clustering quotient cache — key derived results on it to detect
  /// staleness without deep comparisons.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Hit/miss/invalidation counters of the per-pair Eq. 2 memo.
  [[nodiscard]] const CacheStats& cache_stats() const noexcept {
    return cache_stats_;
  }
  void reset_cache_stats() const noexcept { cache_stats_ = CacheStats{}; }

 private:
  struct PairData {
    std::vector<InfluenceFactor> factors;
    std::optional<Probability> direct;
  };

  [[nodiscard]] const PairData* pair(FcmId from, FcmId to) const;
  PairData& pair_mutable(FcmId from, FcmId to);

  struct Member {
    FcmId id;
    std::string name;
  };
  std::vector<Member> members_;
  // (from index << 32 | to index) -> data.
  std::unordered_map<std::uint64_t, PairData> pairs_;
  // Memo of the no-isolation Eq. 2 value per ordered pair (absent pairs
  // cache Probability::zero() too — clustering probes many empty pairs).
  mutable std::unordered_map<std::uint64_t, Probability> value_cache_;
  mutable CacheStats cache_stats_;
  std::uint64_t revision_ = 0;
};

}  // namespace fcm::core
