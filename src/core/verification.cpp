#include "core/verification.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace fcm::core {

const char* to_string(ObligationKind kind) noexcept {
  switch (kind) {
    case ObligationKind::kModuleTest:
      return "module-test";
    case ObligationKind::kInterfaceTest:
      return "interface-test";
  }
  return "?";
}

std::size_t VerificationCampaign::add(ObligationKind kind, FcmId subject,
                                      FcmId counterpart, std::string reason) {
  Obligation item;
  item.id = items_.size();
  item.kind = kind;
  item.subject = subject;
  item.counterpart = counterpart;
  item.reason = std::move(reason);
  items_.push_back(std::move(item));
  return 1;
}

bool VerificationCampaign::has_pending(ObligationKind kind, FcmId subject,
                                       FcmId counterpart) const noexcept {
  return std::any_of(items_.begin(), items_.end(), [&](const Obligation& o) {
    return o.status == ObligationStatus::kPending && o.kind == kind &&
           o.subject == subject && o.counterpart == counterpart;
  });
}

std::size_t VerificationCampaign::plan_initial_certification() {
  std::size_t added = 0;
  for (const FcmId id : hierarchy_->all()) {
    added += add(ObligationKind::kModuleTest, id, FcmId::invalid(),
                 "initial certification");
    for (const FcmId sibling : hierarchy_->siblings(id)) {
      added += add(ObligationKind::kInterfaceTest, id, sibling,
                   "initial certification");
    }
  }
  return added;
}

std::size_t VerificationCampaign::plan_modification(FcmId modified,
                                                    const std::string& reason) {
  std::size_t added = 0;
  if (!has_pending(ObligationKind::kModuleTest, modified, FcmId::invalid())) {
    added += add(ObligationKind::kModuleTest, modified, FcmId::invalid(),
                 reason);
  }
  const FcmId parent = hierarchy_->parent(modified);
  if (parent.valid() &&
      !has_pending(ObligationKind::kModuleTest, parent, FcmId::invalid())) {
    added += add(ObligationKind::kModuleTest, parent, FcmId::invalid(),
                 reason + " (R5: parent of modified FCM)");
  }
  for (const FcmId sibling : hierarchy_->siblings(modified)) {
    if (!has_pending(ObligationKind::kInterfaceTest, modified, sibling)) {
      added += add(ObligationKind::kInterfaceTest, modified, sibling,
                   reason + " (R5: sibling interface)");
    }
  }
  return added;
}

std::size_t VerificationCampaign::import(
    const std::vector<RetestObligation>& retests) {
  std::size_t added = 0;
  for (const RetestObligation& r : retests) {
    const ObligationKind kind = r.interface_with.valid()
                                    ? ObligationKind::kInterfaceTest
                                    : ObligationKind::kModuleTest;
    if (!has_pending(kind, r.subject, r.interface_with)) {
      added += add(kind, r.subject, r.interface_with, r.reason);
    }
  }
  return added;
}

void VerificationCampaign::record_result(std::size_t obligation_id,
                                         bool passed) {
  FCM_REQUIRE(obligation_id < items_.size(), "unknown obligation id");
  items_[obligation_id].status =
      passed ? ObligationStatus::kPassed : ObligationStatus::kFailed;
}

std::size_t VerificationCampaign::pending_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Obligation& o) {
        return o.status == ObligationStatus::kPending;
      }));
}

std::size_t VerificationCampaign::failed_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Obligation& o) {
        return o.status == ObligationStatus::kFailed;
      }));
}

bool VerificationCampaign::certified() const noexcept {
  return !items_.empty() && pending_count() == 0 && failed_count() == 0;
}

std::string VerificationCampaign::summary() const {
  std::ostringstream out;
  const std::size_t passed =
      items_.size() - pending_count() - failed_count();
  out << passed << '/' << items_.size() << " passed, " << pending_count()
      << " pending, " << failed_count() << " failed";
  return out.str();
}

}  // namespace fcm::core
