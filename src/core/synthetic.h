// Deterministic synthetic system generator.
//
// Scale experiments need systems far larger than the paper's 8-process
// example. This generator produces a seeded random FCM hierarchy plus a
// sparse influence model (~3 out-edges per process, probabilities in
// [0.05, 0.6], replication degrees 1–3) with fully deterministic output:
// the same (processes, seed) pair yields a bitwise-identical system on
// every platform and run. The scale bench, the `fcm_tool plan --synthetic`
// command, and the serve daemon's synthetic models all share this one
// generator, so a plan produced in one place can be byte-compared against
// a plan produced in another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/influence.h"

namespace fcm::core::synthetic {

/// One generated system, ready for SwGraph::build / IntegrationPlanner.
struct System {
  FcmHierarchy hierarchy;
  InfluenceModel influence;
  std::vector<FcmId> processes;
};

/// Generates `processes` processes named "p1".."pN" from `seed`.
System make_system(std::size_t processes, std::uint64_t seed);

}  // namespace fcm::core::synthetic
