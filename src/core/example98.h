// The §6 worked example of the paper, reconstructed as a canonical dataset.
//
// The ICDCS'98 scan loses most digits, so this module fixes concrete values
// chosen to satisfy every constraint that *is* legible in the text:
//
//  * p1 is highly critical and runs TMR (FT=3); p2, p3 are intermediate
//    (FT=2); p4..p8 are simplex (Table 1).
//  * Replication expands the 8-process graph to exactly 12 nodes (Fig. 4).
//  * The twelve influence edge weights are the multiset printed in Fig. 3:
//    {0.7, 0.7, 0.6, 0.5, 0.3, 0.3, 0.2, 0.2, 0.2, 0.2, 0.1, 0.1}.
//  * p1<->p2 carries the highest mutual influence, so H1 merges a p1/p2
//    replica pair first (§6.1), and p2<->p3 the next highest.
//  * Timing admits the narrated infeasibilities and nothing else:
//      - the pairwise device "two nodes with timing constraints <.,.,.> and
//        <.,.,.> cannot be scheduled on the same processor": p3 <0,5,3> vs
//        p5 <2,6,4> (demand 7 in the [0,6] window);
//      - the triple "if p2 and p3 are scheduled on the same processor, then
//        p4 cannot": p2+p3, p2+p4, p3+p4 are each feasible, p2+p3+p4 is not.
//  * Approach B's pairing walks to the narrated replicate conflict: pairs
//    (p1a,p8) (p1b,p7) (p1c,p6) (p2a,p5) (p2b,p4) leave replicas p3a/p3b,
//    which is resolved exactly as §6.2 describes (p2b takes p3b, p3a takes
//    p4), producing the Fig. 7 clusters.
//  * The timing-ordered packing of §6.2 reduces to the four-node mapping of
//    Fig. 8: {p1a,p2a,p3a} {p1b,p2b,p3b} {p1c,p4,p5} {p6,p7,p8}.
//
// Time values are in milliseconds (the paper's unit-less small integers).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/influence.h"

namespace fcm::core::example98 {

/// One row of Table 1.
struct ProcessSpec {
  std::string name;
  Criticality criticality;
  ReplicationDegree replication;  ///< the FT column
  std::int64_t est_ms;
  std::int64_t tcd_ms;
  std::int64_t ct_ms;

  [[nodiscard]] Attributes to_attributes() const;
};

/// The eight processes p1..p8 of Table 1 (reconstructed values).
const std::vector<ProcessSpec>& table1();

/// One directed influence edge of Fig. 3.
struct InfluenceEdge {
  std::string from;
  std::string to;
  double weight;
};

/// The twelve influence edges of Fig. 3 (weight multiset matches the paper).
const std::vector<InfluenceEdge>& figure3_edges();

/// A complete example instance: hierarchy with the eight process FCMs and
/// the influence model over them.
struct Instance {
  FcmHierarchy hierarchy;
  InfluenceModel influence;
  std::vector<FcmId> processes;  ///< p1..p8 in order

  /// Id of process "pK" (1-based).
  [[nodiscard]] FcmId process(int k) const;
};

/// Builds the canonical instance.
Instance make_instance();

/// Number of HW nodes in the §6 strongly connected network (Figs. 6 and 7).
inline constexpr int kHwNodes = 6;
/// Number of HW nodes in the Fig. 8 refinement.
inline constexpr int kHwNodesFig8 = 4;

}  // namespace fcm::core::example98
