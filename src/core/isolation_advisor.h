// Isolation advice: which technique, at which boundary, buys how much.
//
// §4.2 closes with "Once influence values are determined, the next step is
// to reduce influence between FCMs so that system dependability is
// increased" and §4.2.2/§4.2.3 catalogue the techniques per factor
// (information hiding for globals, preemptive scheduling for timing faults,
// memory separation for shared memory, ...). `advise` evaluates, for every
// influence-carrying pair, the influence drop each applicable technique
// would deliver at a given effectiveness, and ranks the recommendations.
#pragma once

#include <string>
#include <vector>

#include "core/influence.h"

namespace fcm::core {

/// One ranked recommendation: apply `technique` at `boundary`'s outgoing
/// interfaces to cut its influence on `target`.
struct IsolationAdvice {
  FcmId boundary;           ///< the influencing FCM to instrument
  std::string boundary_name;
  FcmId target;             ///< the protected FCM
  std::string target_name;
  IsolationTechnique technique;
  double influence_before = 0.0;
  double influence_after = 0.0;

  [[nodiscard]] double reduction() const noexcept {
    return influence_before - influence_after;
  }
};

/// Options for the advisor.
struct AdvisorOptions {
  /// The transmission-reduction factor assumed when a technique is applied
  /// (0 = perfect, 1 = useless). The §4.2 text leaves effectiveness to
  /// "field data and estimations"; 0.1 is a conservative order-of-magnitude
  /// default.
  double assumed_factor = 0.1;
  /// Only pairs whose current influence is at least this are considered.
  double min_influence = 0.05;
  /// Keep at most this many recommendations (0 = all).
  std::size_t top_k = 0;
};

/// Evaluates every factor-backed pair and returns recommendations sorted by
/// influence reduction, descending. Pairs modeled with set_direct carry no
/// factor structure and yield no advice (their mechanism is unknown).
std::vector<IsolationAdvice> advise(const InfluenceModel& model,
                                    const AdvisorOptions& options = {});

}  // namespace fcm::core
