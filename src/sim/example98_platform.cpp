#include "sim/example98_platform.h"

#include "core/example98.h"

namespace fcm::sim {

std::vector<Example98Edge> example98_edges() {
  std::vector<Example98Edge> edges;
  for (const auto& edge : core::example98::figure3_edges()) {
    // Names are "pK": parse the 1-based index.
    const auto parse = [](const std::string& name) {
      return static_cast<TaskIndex>(std::stoi(name.substr(1)) - 1);
    };
    edges.push_back(
        Example98Edge{parse(edge.from), parse(edge.to), edge.weight});
  }
  return edges;
}

PlatformSpec example98_platform() {
  PlatformSpec spec;
  // One processor per process keeps timing interference out of the
  // data-flow influence measurement.
  std::vector<ProcessorId> cpus;
  for (int k = 1; k <= 8; ++k) {
    cpus.push_back(spec.add_processor("cpu-p" + std::to_string(k)));
  }
  // Tasks: period 10ms, staggered offsets so writers complete before
  // readers sample within each period.
  for (int k = 1; k <= 8; ++k) {
    TaskSpec task;
    task.name = "p" + std::to_string(k);
    task.processor = cpus[static_cast<std::size_t>(k - 1)];
    task.period = Duration::millis(10);
    task.deadline = Duration::millis(10);
    task.cost = Duration::millis(1);
    task.offset = Duration::millis(k - 1);  // p1 first, p8 last
    task.manifestation = Probability::one();
    spec.add_task(task);
  }
  // One dedicated region per Fig. 3 edge; the region's write-transmission
  // probability realizes the edge weight.
  for (const Example98Edge& edge : example98_edges()) {
    const RegionId region = spec.add_region(
        "r_" + spec.tasks[edge.from].name + "_" + spec.tasks[edge.to].name,
        Probability(edge.weight));
    spec.tasks[edge.from].writes.push_back(region);
    spec.tasks[edge.to].reads.push_back(region);
  }
  spec.validate();
  return spec;
}

}  // namespace fcm::sim
