// Usage-history estimation of fault occurrence probabilities.
//
// §4.2.1: "Since p_{i,1} is the FCM fault occurrence probability, it can be
// measured from previous usage of that FCM. If the FCM has not been used
// previously, an equivalent probability can be derived by extensive
// testing." `UsageHistory::observe` runs the platform without injections
// (only its configured spontaneous fault processes) across one or more
// missions and tallies per-module activation/fault counts, yielding
// smoothed p1 estimates that feed the analytic influence model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/probability.h"
#include "sim/platform.h"

namespace fcm::sim {

/// Accumulated operating history of one module.
struct UsageRecord {
  std::uint64_t activations = 0;
  std::uint64_t own_faults = 0;
  std::uint64_t failures = 0;
  std::uint64_t deadline_misses = 0;

  /// Raw maximum-likelihood fault rate (own_faults / activations).
  [[nodiscard]] double raw_fault_rate() const noexcept {
    return activations == 0 ? 0.0
                            : static_cast<double>(own_faults) /
                                  static_cast<double>(activations);
  }
};

/// Operating history across a platform's modules.
class UsageHistory {
 public:
  /// Runs `missions` independent missions of length `horizon` and
  /// accumulates per-task records. Deterministic in (spec, seed).
  static UsageHistory observe(const PlatformSpec& spec, Duration horizon,
                              std::uint64_t seed, std::uint32_t missions = 1);

  /// Merges another history (e.g. from a different deployment) in.
  void merge(const UsageHistory& other);

  [[nodiscard]] const std::vector<UsageRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const UsageRecord& record(TaskIndex task) const;

  /// Laplace-smoothed p1 estimate: (faults + 1) / (activations + 2).
  /// Smoothing keeps unobserved-fault modules at a small nonzero rate,
  /// matching the paper's insistence that absence of evidence is derived
  /// "by extensive testing", not assumed perfect.
  [[nodiscard]] Probability estimated_p1(TaskIndex task) const;

  /// Total missions folded into this history.
  [[nodiscard]] std::uint32_t missions() const noexcept { return missions_; }

 private:
  std::vector<UsageRecord> records_;
  std::uint32_t missions_ = 0;
};

}  // namespace fcm::sim
