#include "sim/event_queue.h"

#include <memory>

#include "common/error.h"

namespace fcm::sim {

std::uint64_t EventQueue::schedule_at(Instant when, Handler handler) {
  FCM_REQUIRE(when >= now_, "cannot schedule an event in the past");
  FCM_REQUIRE(handler != nullptr, "event handler must be callable");
  auto event = std::make_unique<Event>();
  event->when = when;
  event->seq = next_seq_++;
  event->handler = std::move(handler);
  Event* raw = event.get();
  storage_.push_back(std::move(event));
  queue_.push(raw);
  return raw->seq;
}

std::uint64_t EventQueue::schedule_in(Duration delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool EventQueue::cancel(std::uint64_t token) {
  // Linear scan over live storage; event counts are modest and cancels are
  // rare (scheduler switches only).
  for (const auto& event : storage_) {
    if (event->seq == token && !event->cancelled) {
      event->cancelled = true;
      return true;
    }
  }
  return false;
}

void EventQueue::run_until(Instant until) {
  while (!queue_.empty()) {
    Event* event = queue_.top();
    if (event->when > until) break;
    queue_.pop();
    if (event->cancelled) continue;
    now_ = event->when;
    ++dispatched_;
    // Move the handler out so re-entrant scheduling cannot touch it.
    Handler handler = std::move(event->handler);
    event->cancelled = true;
    handler();
  }
  if (queue_.empty() || queue_.top()->when > until) {
    now_ = std::max(now_, until);
  }
  // Compact storage when the queue has fully drained — the priority queue
  // holds raw pointers into storage_, so eager compaction would dangle.
  if (queue_.empty() && storage_.size() > 1024) {
    storage_.clear();
  }
}

void EventQueue::run() { run_until(Instant::distant_future()); }

bool EventQueue::empty() const noexcept {
  // The queue may hold cancelled entries; report emptiness conservatively.
  return queue_.empty();
}

}  // namespace fcm::sim
