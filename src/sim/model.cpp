#include "sim/model.h"

#include <algorithm>

#include "common/error.h"

namespace fcm::sim {

const char* to_string(SchedPolicy policy) noexcept {
  switch (policy) {
    case SchedPolicy::kPreemptiveEdf:
      return "preemptive-EDF";
    case SchedPolicy::kNonPreemptiveFifo:
      return "non-preemptive-FIFO";
    case SchedPolicy::kFixedPriorityDm:
      return "fixed-priority-DM";
  }
  return "?";
}

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kValue:
      return "value";
    case FaultKind::kTiming:
      return "timing";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kMemoryScribble:
      return "memory-scribble";
  }
  return "?";
}

ProcessorId PlatformSpec::add_processor(std::string name, SchedPolicy policy) {
  processors.push_back(ProcessorSpec{std::move(name), policy});
  return ProcessorId(static_cast<std::uint32_t>(processors.size() - 1));
}

RegionId PlatformSpec::add_region(std::string name,
                                  Probability write_transmission) {
  regions.push_back(RegionSpec{std::move(name), write_transmission});
  return RegionId(static_cast<std::uint32_t>(regions.size() - 1));
}

ChannelId PlatformSpec::add_channel(std::string name, TaskIndex sender,
                                    TaskIndex receiver,
                                    Probability transmission,
                                    Probability corruption) {
  ChannelSpec channel;
  channel.name = std::move(name);
  channel.sender = sender;
  channel.receiver = receiver;
  channel.transmission = transmission;
  channel.corruption = corruption;
  channels.push_back(std::move(channel));
  const ChannelId id(static_cast<std::uint32_t>(channels.size() - 1));
  // Wire the endpoints' send/receive lists when the tasks already exist.
  if (sender < tasks.size()) tasks[sender].sends.push_back(id);
  if (receiver < tasks.size()) tasks[receiver].receives.push_back(id);
  return id;
}

TaskIndex PlatformSpec::add_task(TaskSpec task) {
  tasks.push_back(std::move(task));
  return static_cast<TaskIndex>(tasks.size() - 1);
}

void PlatformSpec::validate() const {
  FCM_REQUIRE(!processors.empty(), "platform needs at least one processor");
  for (const TaskSpec& task : tasks) {
    FCM_REQUIRE(task.processor.valid() &&
                    task.processor.value() < processors.size(),
                "task " + task.name + " references an unknown processor");
    FCM_REQUIRE(task.period > Duration::zero(),
                "task " + task.name + " needs a positive period");
    FCM_REQUIRE(task.cost > Duration::zero(),
                "task " + task.name + " needs a positive cost");
    FCM_REQUIRE(task.deadline <= task.period,
                "task " + task.name + " uses the constrained-deadline model");
    FCM_REQUIRE(task.cost <= task.deadline,
                "task " + task.name + " can never meet its deadline");
    auto check_region = [&](RegionId id) {
      FCM_REQUIRE(id.valid() && id.value() < regions.size(),
                  "task " + task.name + " references an unknown region");
    };
    for (const RegionId id : task.reads) check_region(id);
    for (const RegionId id : task.writes) check_region(id);
    auto check_channel = [&](ChannelId id) {
      FCM_REQUIRE(id.valid() && id.value() < channels.size(),
                  "task " + task.name + " references an unknown channel");
    };
    for (const ChannelId id : task.sends) check_channel(id);
    for (const ChannelId id : task.receives) check_channel(id);
  }
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const ChannelSpec& channel = channels[c];
    FCM_REQUIRE(channel.sender < tasks.size() &&
                    channel.receiver < tasks.size(),
                "channel " + channel.name + " has an unknown endpoint");
    const auto& sends = tasks[channel.sender].sends;
    const auto& receives = tasks[channel.receiver].receives;
    const ChannelId id(static_cast<std::uint32_t>(c));
    FCM_REQUIRE(std::find(sends.begin(), sends.end(), id) != sends.end(),
                "channel " + channel.name + " missing from sender's list");
    FCM_REQUIRE(
        std::find(receives.begin(), receives.end(), id) != receives.end(),
        "channel " + channel.name + " missing from receiver's list");
  }
}

}  // namespace fcm::sim
