// Empirical influence measurement by fault injection.
//
// The paper: "the value of p_{i,3} can be determined by injecting faults
// into the target FCM, to estimate the probability that a faulty input will
// cause a target fault" and "if the FCM has not been used previously, an
// equivalent probability can be derived by extensive testing" (§4.2.1).
// `InfluenceEstimator` runs repeated simulations, injecting one fault into
// a chosen source module per trial, and reports the fraction of trials in
// which each other module exhibited a failure traceable to that source —
// the empirical counterpart of Eq. 2's influence.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/matrix.h"
#include "sim/platform.h"

namespace fcm::sim {

/// Campaign parameters.
struct EstimatorOptions {
  /// Trials per (source task, fault kind) pair.
  std::uint32_t trials = 100;
  /// Simulated horizon per trial.
  Duration horizon = Duration::millis(200);
  /// Injection activation is drawn uniformly from [0, max_activation).
  std::uint32_t max_activation = 8;
  FaultKind kind = FaultKind::kValue;
  /// Worker threads for the campaign (0 = hardware concurrency). Every
  /// trial draws from its own RNG substream and tallies are integer counts,
  /// so results are identical for any thread count.
  std::uint32_t threads = 1;
};

/// Per-pair campaign tallies, exposing the p1/p2/p3 decomposition the
/// analytic model uses.
struct PairEstimate {
  std::uint32_t trials = 0;
  /// Trials where the target consumed taint originating at the source
  /// (the fault was transmitted: the p2 leg).
  std::uint32_t transmitted = 0;
  /// Trials where the target manifested a failure with that origin (the
  /// full p2*p3 chain).
  std::uint32_t manifested = 0;

  /// Empirical influence given the fault occurred (p1 = 1 by injection).
  [[nodiscard]] double influence() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(manifested) /
                             static_cast<double>(trials);
  }
  /// Empirical p3 estimate: manifested / transmitted.
  [[nodiscard]] double manifestation_given_transmission() const noexcept {
    return transmitted == 0 ? 0.0
                            : static_cast<double>(manifested) /
                                  static_cast<double>(transmitted);
  }
};

/// The result of a full campaign over every source module.
struct EstimationResult {
  /// influence_matrix.at(i, j) = empirical influence of task i on task j.
  graph::Matrix influence;
  std::vector<std::vector<PairEstimate>> pairs;  ///< [source][target]
  std::uint64_t total_runs = 0;

  explicit EstimationResult(std::size_t n)
      : influence(n), pairs(n, std::vector<PairEstimate>(n)) {}
};

/// Runs injection campaigns over a platform spec.
class InfluenceEstimator {
 public:
  /// The spec is copied, so temporaries are safe to pass.
  InfluenceEstimator(PlatformSpec spec, std::uint64_t seed);

  /// Campaign with one injected fault per trial into `source`.
  std::vector<PairEstimate> estimate_from(TaskIndex source,
                                          const EstimatorOptions& options);

  /// Full campaign: every task as source.
  EstimationResult estimate_all(const EstimatorOptions& options);

 private:
  PlatformSpec spec_;
  Rng rng_;
  /// Campaign counter: campaign c, trial t samples substream
  /// rng_.substream(c).substream(t), so repeated campaigns stay
  /// independent while each remains reproducible and parallelizable.
  std::uint64_t campaign_ = 0;
};

}  // namespace fcm::sim
