// The simulated platform's workload model.
//
// The paper prescribes measuring influence parameters on a real embedded
// platform: p_{i,1} from field data, p_{i,2} from the communication medium,
// p_{i,3} by "injecting faults into the target FCM" (§4.2.1). No such
// platform is available, so this model simulates the closest equivalent
// (see DESIGN.md substitutions): periodic tasks on processors exchanging
// data through shared memory regions and message channels, with error
// propagation modeled as taint flow. Faults occur in a source module (p1),
// cross a medium that may or may not carry them (p2), and manifest as a
// target failure (p3) — exercising exactly the three-factor decomposition
// the framework's analytic model assumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/probability.h"
#include "common/time.h"

namespace fcm::sim {

/// Task identifier within a PlatformSpec (dense index).
using TaskIndex = std::uint32_t;

/// Scheduling discipline of one simulated processor.
enum class SchedPolicy : std::uint8_t {
  kPreemptiveEdf,     ///< earliest absolute deadline first, preemptive
  kNonPreemptiveFifo, ///< run-to-completion in arrival order
  kFixedPriorityDm,   ///< preemptive fixed priority, deadline-monotonic
};

const char* to_string(SchedPolicy policy) noexcept;

/// A shared-memory region (process/task-level influence factor f: shared
/// memory). Taint written here is visible to every reader.
struct RegionSpec {
  std::string name;
  /// Probability a write transmits taint into the region when the writer's
  /// state is erroneous (the medium component of p_{i,2}).
  Probability write_transmission = Probability::one();
};

/// A point-to-point message channel (influence factor: message passing).
struct ChannelSpec {
  std::string name;
  TaskIndex sender = 0;
  TaskIndex receiver = 0;
  /// Probability a message carries taint when the sender is erroneous.
  Probability transmission = Probability::one();
  /// Probability a message spontaneously corrupts in transit (medium
  /// noise, independent of the sender's state).
  Probability corruption = Probability::zero();
};

/// One periodic task.
struct TaskSpec {
  std::string name;
  ProcessorId processor;
  Duration period;
  Duration deadline;  ///< relative deadline, <= period
  Duration cost;
  Duration offset = Duration::zero();

  /// Regions read at the start / written at the end of each activation.
  std::vector<RegionId> reads;
  std::vector<RegionId> writes;
  /// Channels this task sends on / receives from each activation.
  std::vector<ChannelId> sends;
  std::vector<ChannelId> receives;

  /// p1: probability an activation spontaneously develops a value fault.
  Probability fault_rate = Probability::zero();
  /// p3: probability a tainted input manifests as a failure of this task.
  Probability manifestation = Probability::one();
  /// Probability an input acceptance check catches (and drops) taint
  /// before it can manifest or propagate — the isolation lever.
  Probability input_check = Probability::zero();
  /// Probability erroneous internal state survives into the next
  /// activation. Default 0: faults are transient, matching the paper's
  /// stateless-procedure assumption; raise it to model modules with
  /// persistent corrupted state (e.g. static variables).
  Probability state_persistence = Probability::zero();
};

/// One simulated processor.
struct ProcessorSpec {
  std::string name;
  SchedPolicy policy = SchedPolicy::kPreemptiveEdf;
};

/// A complete platform description.
struct PlatformSpec {
  std::vector<ProcessorSpec> processors;
  std::vector<RegionSpec> regions;
  std::vector<ChannelSpec> channels;
  std::vector<TaskSpec> tasks;

  ProcessorId add_processor(std::string name,
                            SchedPolicy policy = SchedPolicy::kPreemptiveEdf);
  RegionId add_region(std::string name,
                      Probability write_transmission = Probability::one());
  ChannelId add_channel(std::string name, TaskIndex sender,
                        TaskIndex receiver,
                        Probability transmission = Probability::one(),
                        Probability corruption = Probability::zero());
  TaskIndex add_task(TaskSpec task);

  /// Structural validation (indices in range, deadlines <= periods,
  /// channel endpoints consistent with task send/receive lists).
  void validate() const;
};

/// Kinds of faults the injector can plant.
enum class FaultKind : std::uint8_t {
  kValue,   ///< the activation's outputs are erroneous
  kTiming,  ///< the activation's cost is inflated
  kCrash,   ///< the task stops running (no further activations)
  kMemoryScribble,  ///< a random region the task can reach is corrupted
};

const char* to_string(FaultKind kind) noexcept;

/// One planned fault injection.
struct FaultInjection {
  FaultKind kind = FaultKind::kValue;
  TaskIndex target = 0;
  /// The activation index (0-based) at which to inject.
  std::uint32_t activation = 0;
  /// Number of consecutive activations affected, starting at `activation`.
  /// 1 models a transient fault; a larger count a fault burst; kForever a
  /// babbling module that emits erroneous output until the horizon.
  std::uint32_t count = 1;
  /// For kTiming: the factor by which the cost inflates.
  double cost_factor = 3.0;

  /// Sentinel count: every activation from `activation` onward.
  static constexpr std::uint32_t kForever = 0xFFFFFFFFu;
};

}  // namespace fcm::sim
