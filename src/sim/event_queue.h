// Discrete-event simulation core.
//
// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so equal-time events execute exactly in the order they were
// scheduled. All platform behaviour (job releases, completions, fault
// injections) is expressed as events against this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace fcm::sim {

/// The simulation clock and event dispatcher.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] Instant now() const noexcept { return now_; }

  /// Schedules `handler` at absolute time `when` (must not be in the past).
  /// Returns a token that can be passed to `cancel`.
  std::uint64_t schedule_at(Instant when, Handler handler);

  /// Schedules `handler` `delay` after now.
  std::uint64_t schedule_in(Duration delay, Handler handler);

  /// Cancels a scheduled event; cancelling an already-fired or unknown
  /// token is a no-op (returns false).
  bool cancel(std::uint64_t token);

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events exactly at `until` still fire.
  void run_until(Instant until);

  /// Runs until the queue is empty.
  void run();

  /// Number of events dispatched so far.
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept;

 private:
  struct Event {
    Instant when;
    std::uint64_t seq;
    Handler handler;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Event* a, const Event* b) const noexcept {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  Instant now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  // Events are owned by this deque-like store; the priority queue holds
  // pointers. Fired/cancelled events are lazily discarded.
  std::vector<std::unique_ptr<Event>> storage_;
  std::priority_queue<Event*, std::vector<Event*>, Order> queue_;
};

}  // namespace fcm::sim
