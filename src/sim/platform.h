// The discrete-event RT platform: scheduling + dataflow + fault propagation.
//
// Executes a PlatformSpec: periodic tasks on processors (preemptive EDF or
// non-preemptive FIFO), consuming and producing data through shared regions
// and channels. Erroneous state propagates as taint with a tracked origin
// task, which is what lets the influence estimator attribute a downstream
// failure to the module whose fault started the chain — the simulated
// equivalent of the paper's fault-injection campaigns (§4.2.1).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/model.h"

namespace fcm::sim {

/// Per-task outcome counters for one run.
struct TaskStats {
  std::uint32_t activations = 0;
  std::uint32_t completions = 0;
  std::uint32_t deadline_misses = 0;
  std::uint32_t own_faults = 0;       ///< p1 events (spontaneous + injected)
  std::uint32_t tainted_inputs = 0;   ///< activations that consumed taint
  std::uint32_t detected_inputs = 0;  ///< taint caught by the input check
  std::uint32_t failures = 0;         ///< manifested failures of any cause
  std::uint32_t propagated_failures = 0;  ///< failures caused by foreign taint

  [[nodiscard]] bool failed() const noexcept { return failures > 0; }
};

/// One observed fault propagation: origin module -> failing module.
struct PropagationEvent {
  TaskIndex from = 0;
  TaskIndex to = 0;
  Instant when;
};

/// The outcome of one simulation run.
struct SimReport {
  std::vector<TaskStats> tasks;
  std::vector<PropagationEvent> propagations;
  std::uint64_t events_dispatched = 0;
  /// Processors taken down by scheduled crashes during the run.
  std::uint32_t processors_crashed = 0;
  /// Jobs dropped mid-service or from ready queues by a processor crash.
  std::uint32_t jobs_abandoned = 0;

  /// Whether any failure of `to` traces back to a fault origin `from`.
  [[nodiscard]] bool propagated(TaskIndex from, TaskIndex to) const;
};

/// One executable platform instance. Construct, optionally `inject`, then
/// `run` exactly once.
class Platform {
 public:
  /// `seed` drives every stochastic decision; identical (spec, seed,
  /// injections) triples replay identically. The spec is copied, so
  /// temporaries are safe to pass.
  Platform(PlatformSpec spec, std::uint64_t seed);

  /// Plants a fault before the run.
  void inject(const FaultInjection& injection);

  /// Schedules a permanent processor crash at `at` (relative to the run
  /// start): the job in service and every queued job are abandoned, and no
  /// task bound to the processor activates again — the HW-loss stimulus the
  /// resilience campaigns replan from.
  void crash_processor_at(std::uint32_t processor, Duration at);

  /// Schedules a direct corruption of `region` at `at`, attributed to
  /// `blame` as the taint origin (e.g. a scribbling writer or a cosmic-ray
  /// upset pinned on the region's producer).
  void corrupt_region_at(RegionId region, Duration at, TaskIndex blame);

  /// Simulates until no activation released before `horizon` remains
  /// outstanding, and returns the report.
  SimReport run(Duration horizon);

 private:
  struct Job {
    TaskIndex task = 0;
    std::uint32_t activation = 0;
    Instant release;
    Instant absolute_deadline;
    Duration remaining;
    std::uint64_t arrival_seq = 0;
  };

  struct Taint {
    bool tainted = false;
    TaskIndex origin = 0;
  };

  struct ProcessorState {
    std::optional<Job> current;
    Instant service_start;
    std::uint64_t completion_token = 0;
    std::vector<Job> ready;
    bool crashed = false;
  };

  /// A pre-run scheduled platform-level event (crash or corruption).
  struct TimedEvent {
    enum class Kind : std::uint8_t { kProcessorCrash, kRegionCorruption };
    Kind kind = Kind::kProcessorCrash;
    std::uint32_t processor = 0;
    RegionId region;
    TaskIndex blame = 0;
    Duration at;
  };

  struct TaskState {
    bool crashed = false;
    Taint carried;  ///< erroneous state carried across the activation
  };

  void release_job(TaskIndex task, std::uint32_t activation);
  void dispatch(std::uint32_t processor);
  void complete_current(std::uint32_t processor);
  void finish_job(const Job& job);
  void crash_processor(std::uint32_t processor);
  const FaultInjection* injection_for(TaskIndex task,
                                      std::uint32_t activation) const;

  PlatformSpec spec_;
  Rng rng_;
  EventQueue queue_;
  Duration horizon_ = Duration::zero();
  std::uint64_t next_arrival_seq_ = 0;

  std::vector<ProcessorState> processors_;
  std::vector<TaskState> task_states_;
  std::vector<Taint> regions_;
  std::vector<std::vector<Taint>> channel_queues_;
  std::vector<FaultInjection> injections_;
  std::vector<TimedEvent> timed_events_;
  /// Task whose injected timing fault is currently inflating service on a
  /// processor (for attributing downstream deadline misses).
  std::vector<std::optional<TaskIndex>> disturbance_;

  SimReport report_;
  bool ran_ = false;
};

}  // namespace fcm::sim
