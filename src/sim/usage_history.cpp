#include "sim/usage_history.h"

#include "common/error.h"
#include "common/rng.h"

namespace fcm::sim {

UsageHistory UsageHistory::observe(const PlatformSpec& spec,
                                   Duration horizon, std::uint64_t seed,
                                   std::uint32_t missions) {
  FCM_REQUIRE(missions > 0, "at least one mission required");
  UsageHistory history;
  history.records_.resize(spec.tasks.size());
  history.missions_ = missions;
  Rng rng(seed);
  for (std::uint32_t mission = 0; mission < missions; ++mission) {
    Platform platform(spec, rng.fork()());
    const SimReport report = platform.run(horizon);
    for (TaskIndex task = 0; task < spec.tasks.size(); ++task) {
      UsageRecord& record = history.records_[task];
      const TaskStats& stats = report.tasks[task];
      record.activations += stats.activations;
      record.own_faults += stats.own_faults;
      record.failures += stats.failures;
      record.deadline_misses += stats.deadline_misses;
    }
  }
  return history;
}

void UsageHistory::merge(const UsageHistory& other) {
  FCM_REQUIRE(records_.size() == other.records_.size(),
              "histories cover different platforms");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    records_[i].activations += other.records_[i].activations;
    records_[i].own_faults += other.records_[i].own_faults;
    records_[i].failures += other.records_[i].failures;
    records_[i].deadline_misses += other.records_[i].deadline_misses;
  }
  missions_ += other.missions_;
}

const UsageRecord& UsageHistory::record(TaskIndex task) const {
  FCM_REQUIRE(task < records_.size(), "unknown task");
  return records_[task];
}

Probability UsageHistory::estimated_p1(TaskIndex task) const {
  const UsageRecord& r = record(task);
  return Probability::clamped(
      (static_cast<double>(r.own_faults) + 1.0) /
      (static_cast<double>(r.activations) + 2.0));
}

}  // namespace fcm::sim
