// A simulated platform realizing the §6 example's influence topology.
//
// The paper assumes the Fig. 3 influence values ("randomly generated for
// this example; for a real application, the values of influence would be
// determined using Equations 1 and 2 using field data and estimations").
// This module builds an executable platform whose fault-propagation
// behaviour *realizes* those values: each Fig. 3 edge u -> v (weight w)
// becomes a dedicated shared region written by u and read by v with
// write-transmission probability w and manifestation 1, so an injection
// campaign (p1 = 1) measures influence ≈ w. Closing this loop validates
// that the framework's analytic numbers are operationally meaningful.
#pragma once

#include <string>
#include <vector>

#include "sim/model.h"

namespace fcm::sim {

/// The eight processes of §6 as periodic tasks on eight processors (one
/// each — influence here flows through data, not CPU contention), wired per
/// the Fig. 3 edges. Task index k hosts process p(k+1).
PlatformSpec example98_platform();

/// The Fig. 3 edge list as (source task, target task, weight) triples in
/// the same order as core::example98::figure3_edges().
struct Example98Edge {
  TaskIndex from;
  TaskIndex to;
  double weight;
};
std::vector<Example98Edge> example98_edges();

}  // namespace fcm::sim
