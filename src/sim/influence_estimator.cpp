#include "sim/influence_estimator.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/error.h"

namespace fcm::sim {

InfluenceEstimator::InfluenceEstimator(PlatformSpec spec,
                                       std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  spec_.validate();
}

std::vector<PairEstimate> InfluenceEstimator::estimate_from(
    TaskIndex source, const EstimatorOptions& options) {
  FCM_REQUIRE(source < spec_.tasks.size(), "unknown source task");
  FCM_REQUIRE(options.trials > 0, "campaign needs at least one trial");
  const std::size_t n = spec_.tasks.size();
  const Rng master = rng_.substream(campaign_++);

  std::uint32_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, options.trials);

  // Integer tallies commute, so per-worker partial sums merge to the same
  // totals no matter how trials were distributed over threads.
  struct Tally {
    std::uint32_t transmitted = 0;
    std::uint32_t manifested = 0;
  };
  std::vector<std::vector<Tally>> partials(threads,
                                           std::vector<Tally>(n));
  std::atomic<std::uint32_t> next_trial{0};

  auto worker = [&](std::vector<Tally>& tallies) {
    for (;;) {
      const std::uint32_t trial =
          next_trial.fetch_add(1, std::memory_order_relaxed);
      if (trial >= options.trials) break;
      Rng draw = master.substream(trial);
      const std::uint64_t hi = draw();
      const std::uint64_t lo = draw();
      Platform platform(spec_, (hi << 32) | lo);
      FaultInjection injection;
      injection.kind = options.kind;
      injection.target = source;
      injection.activation =
          options.max_activation > 1 ? draw.below(options.max_activation)
                                     : 0;
      platform.inject(injection);
      const SimReport report = platform.run(options.horizon);

      for (TaskIndex target = 0; target < n; ++target) {
        if (target == source) continue;
        if (report.tasks[target].tainted_inputs > 0) {
          // Transmission observed; attribute it to the source when a
          // propagation event names it (other taint sources are possible
          // when spontaneous fault rates are nonzero).
          ++tallies[target].transmitted;
        }
        if (report.propagated(source, target)) {
          ++tallies[target].manifested;
        }
      }
    }
  };

  if (threads <= 1) {
    worker(partials[0]);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] { worker(partials[t]); });
    }
    for (std::thread& t : pool) t.join();
  }

  std::vector<PairEstimate> estimates(n);
  for (TaskIndex target = 0; target < n; ++target) {
    if (target == source) continue;
    estimates[target].trials = options.trials;
    for (const std::vector<Tally>& tallies : partials) {
      estimates[target].transmitted += tallies[target].transmitted;
      estimates[target].manifested += tallies[target].manifested;
    }
  }
  return estimates;
}

EstimationResult InfluenceEstimator::estimate_all(
    const EstimatorOptions& options) {
  EstimationResult result(spec_.tasks.size());
  for (TaskIndex source = 0; source < spec_.tasks.size(); ++source) {
    auto estimates = estimate_from(source, options);
    for (TaskIndex target = 0; target < spec_.tasks.size(); ++target) {
      if (target == source) continue;
      result.influence.at(source, target) = estimates[target].influence();
    }
    result.pairs[source] = std::move(estimates);
  }
  result.total_runs =
      static_cast<std::uint64_t>(spec_.tasks.size()) * options.trials;
  return result;
}

}  // namespace fcm::sim
