#include "sim/influence_estimator.h"

#include "common/error.h"

namespace fcm::sim {

InfluenceEstimator::InfluenceEstimator(PlatformSpec spec,
                                       std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  spec_.validate();
}

std::vector<PairEstimate> InfluenceEstimator::estimate_from(
    TaskIndex source, const EstimatorOptions& options) {
  FCM_REQUIRE(source < spec_.tasks.size(), "unknown source task");
  FCM_REQUIRE(options.trials > 0, "campaign needs at least one trial");
  std::vector<PairEstimate> estimates(spec_.tasks.size());

  for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
    Platform platform(spec_, rng_.fork()());
    FaultInjection injection;
    injection.kind = options.kind;
    injection.target = source;
    injection.activation =
        options.max_activation > 1 ? rng_.below(options.max_activation) : 0;
    platform.inject(injection);
    const SimReport report = platform.run(options.horizon);

    for (TaskIndex target = 0; target < spec_.tasks.size(); ++target) {
      if (target == source) continue;
      PairEstimate& estimate = estimates[target];
      ++estimate.trials;
      if (report.tasks[target].tainted_inputs > 0) {
        // Transmission observed; attribute it to the source when a
        // propagation event names it (other taint sources are possible
        // when spontaneous fault rates are nonzero).
        ++estimate.transmitted;
      }
      if (report.propagated(source, target)) ++estimate.manifested;
    }
  }
  return estimates;
}

EstimationResult InfluenceEstimator::estimate_all(
    const EstimatorOptions& options) {
  EstimationResult result(spec_.tasks.size());
  for (TaskIndex source = 0; source < spec_.tasks.size(); ++source) {
    auto estimates = estimate_from(source, options);
    for (TaskIndex target = 0; target < spec_.tasks.size(); ++target) {
      if (target == source) continue;
      result.influence.at(source, target) = estimates[target].influence();
    }
    result.pairs[source] = std::move(estimates);
  }
  result.total_runs =
      static_cast<std::uint64_t>(spec_.tasks.size()) * options.trials;
  return result;
}

}  // namespace fcm::sim
