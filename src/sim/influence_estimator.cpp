#include "sim/influence_estimator.h"

#include <algorithm>

#include "common/error.h"
#include "exec/executor.h"

namespace fcm::sim {

InfluenceEstimator::InfluenceEstimator(PlatformSpec spec,
                                       std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  spec_.validate();
}

std::vector<PairEstimate> InfluenceEstimator::estimate_from(
    TaskIndex source, const EstimatorOptions& options) {
  FCM_REQUIRE(source < spec_.tasks.size(), "unknown source task");
  FCM_REQUIRE(options.trials > 0, "campaign needs at least one trial");
  const std::size_t n = spec_.tasks.size();
  const Rng master = rng_.substream(campaign_++);

  const std::uint32_t threads =
      exec::resolve_threads(options.threads, options.trials);

  // Integer tallies commute, so per-lane partial sums merge to the same
  // totals no matter how trials were distributed over threads. Each trial
  // draws from substream(trial), so the sample path is a pure function of
  // the trial index.
  struct Tally {
    std::uint32_t transmitted = 0;
    std::uint32_t manifested = 0;
  };
  std::vector<std::vector<Tally>> partials(threads,
                                           std::vector<Tally>(n));

  exec::parallel_for_blocks(
      options.trials, threads, [&](std::uint64_t t, std::uint32_t lane) {
        const std::uint32_t trial = static_cast<std::uint32_t>(t);
        std::vector<Tally>& tallies = partials[lane];
        Rng draw = master.substream(trial);
        const std::uint64_t hi = draw();
        const std::uint64_t lo = draw();
        Platform platform(spec_, (hi << 32) | lo);
        FaultInjection injection;
        injection.kind = options.kind;
        injection.target = source;
        injection.activation =
            options.max_activation > 1 ? draw.below(options.max_activation)
                                       : 0;
        platform.inject(injection);
        const SimReport report = platform.run(options.horizon);

        for (TaskIndex target = 0; target < n; ++target) {
          if (target == source) continue;
          if (report.tasks[target].tainted_inputs > 0) {
            // Transmission observed; attribute it to the source when a
            // propagation event names it (other taint sources are possible
            // when spontaneous fault rates are nonzero).
            ++tallies[target].transmitted;
          }
          if (report.propagated(source, target)) {
            ++tallies[target].manifested;
          }
        }
      });

  std::vector<PairEstimate> estimates(n);
  for (TaskIndex target = 0; target < n; ++target) {
    if (target == source) continue;
    estimates[target].trials = options.trials;
    for (const std::vector<Tally>& tallies : partials) {
      estimates[target].transmitted += tallies[target].transmitted;
      estimates[target].manifested += tallies[target].manifested;
    }
  }
  return estimates;
}

EstimationResult InfluenceEstimator::estimate_all(
    const EstimatorOptions& options) {
  EstimationResult result(spec_.tasks.size());
  for (TaskIndex source = 0; source < spec_.tasks.size(); ++source) {
    auto estimates = estimate_from(source, options);
    for (TaskIndex target = 0; target < spec_.tasks.size(); ++target) {
      if (target == source) continue;
      result.influence.at(source, target) = estimates[target].influence();
    }
    result.pairs[source] = std::move(estimates);
  }
  result.total_runs =
      static_cast<std::uint64_t>(spec_.tasks.size()) * options.trials;
  return result;
}

}  // namespace fcm::sim
