#include "sim/platform.h"

#include <algorithm>

#include "common/error.h"

namespace fcm::sim {

bool SimReport::propagated(TaskIndex from, TaskIndex to) const {
  return std::any_of(propagations.begin(), propagations.end(),
                     [&](const PropagationEvent& e) {
                       return e.from == from && e.to == to;
                     });
}

Platform::Platform(PlatformSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  spec_.validate();
  processors_.resize(spec_.processors.size());
  task_states_.resize(spec_.tasks.size());
  regions_.resize(spec_.regions.size());
  channel_queues_.resize(spec_.channels.size());
  disturbance_.resize(spec_.processors.size());
  report_.tasks.resize(spec_.tasks.size());
}

void Platform::inject(const FaultInjection& injection) {
  FCM_REQUIRE(!ran_, "faults must be planted before the run");
  FCM_REQUIRE(injection.target < spec_.tasks.size(),
              "injection targets an unknown task");
  injections_.push_back(injection);
}

void Platform::crash_processor_at(std::uint32_t processor, Duration at) {
  FCM_REQUIRE(!ran_, "crashes must be planted before the run");
  FCM_REQUIRE(processor < spec_.processors.size(),
              "crash targets an unknown processor");
  FCM_REQUIRE(at >= Duration::zero(), "crash time must not be negative");
  TimedEvent event;
  event.kind = TimedEvent::Kind::kProcessorCrash;
  event.processor = processor;
  event.at = at;
  timed_events_.push_back(event);
}

void Platform::corrupt_region_at(RegionId region, Duration at,
                                 TaskIndex blame) {
  FCM_REQUIRE(!ran_, "corruptions must be planted before the run");
  FCM_REQUIRE(region.valid() && region.value() < spec_.regions.size(),
              "corruption targets an unknown region");
  FCM_REQUIRE(blame < spec_.tasks.size(),
              "corruption blames an unknown task");
  FCM_REQUIRE(at >= Duration::zero(), "corruption time must not be negative");
  TimedEvent event;
  event.kind = TimedEvent::Kind::kRegionCorruption;
  event.region = region;
  event.blame = blame;
  event.at = at;
  timed_events_.push_back(event);
}

void Platform::crash_processor(std::uint32_t processor) {
  ProcessorState& p = processors_[processor];
  if (p.crashed) return;
  p.crashed = true;
  ++report_.processors_crashed;
  // Abandon the job in service and everything queued: each counts as a
  // failure of its task (the output was never delivered).
  if (p.current.has_value()) {
    queue_.cancel(p.completion_token);
    ++report_.tasks[p.current->task].failures;
    ++report_.jobs_abandoned;
    p.current.reset();
  }
  for (const Job& job : p.ready) {
    ++report_.tasks[job.task].failures;
    ++report_.jobs_abandoned;
  }
  p.ready.clear();
  disturbance_[processor].reset();
  // Tasks bound to the processor never activate again.
  for (TaskIndex task = 0; task < spec_.tasks.size(); ++task) {
    if (spec_.tasks[task].processor.value() == processor) {
      task_states_[task].crashed = true;
    }
  }
}

const FaultInjection* Platform::injection_for(
    TaskIndex task, std::uint32_t activation) const {
  for (const FaultInjection& injection : injections_) {
    if (injection.target != task || activation < injection.activation) {
      continue;
    }
    if (activation - injection.activation < injection.count) {
      return &injection;
    }
  }
  return nullptr;
}

void Platform::release_job(TaskIndex task, std::uint32_t activation) {
  const TaskSpec& spec = spec_.tasks[task];
  if (task_states_[task].crashed) return;

  Job job;
  job.task = task;
  job.activation = activation;
  job.release = queue_.now();
  job.absolute_deadline = job.release + spec.deadline;
  job.remaining = spec.cost;
  job.arrival_seq = next_arrival_seq_++;
  ++report_.tasks[task].activations;

  // Injected faults that act at release time.
  if (const FaultInjection* injection = injection_for(task, activation)) {
    switch (injection->kind) {
      case FaultKind::kTiming:
        job.remaining = Duration::ticks(static_cast<std::int64_t>(
            static_cast<double>(spec.cost.count()) * injection->cost_factor));
        break;
      case FaultKind::kCrash:
        task_states_[task].crashed = true;
        ++report_.tasks[task].failures;
        return;  // the job never runs
      case FaultKind::kValue:
      case FaultKind::kMemoryScribble:
        break;  // handled at completion
    }
  }

  const std::uint32_t processor = spec.processor.value();
  ProcessorState& p = processors_[processor];
  if (p.crashed) return;

  // Schedule the next periodic release.
  const Instant next = job.release + spec.period;
  if (next.since_epoch() < horizon_) {
    queue_.schedule_at(next, [this, task, activation] {
      release_job(task, activation + 1);
    });
  }

  p.ready.push_back(job);
  if (!p.current.has_value()) {
    dispatch(processor);
    return;
  }
  const SchedPolicy policy = spec_.processors[processor].policy;
  bool preempts = false;
  switch (policy) {
    case SchedPolicy::kPreemptiveEdf:
      preempts = job.absolute_deadline < p.current->absolute_deadline;
      break;
    case SchedPolicy::kFixedPriorityDm:
      // Static priority: shorter relative deadline wins.
      preempts = spec_.tasks[job.task].deadline <
                 spec_.tasks[p.current->task].deadline;
      break;
    case SchedPolicy::kNonPreemptiveFifo:
      break;
  }
  if (preempts) {
    // Preempt: bank the current job's progress and re-queue it.
    queue_.cancel(p.completion_token);
    Job preempted = *p.current;
    preempted.remaining -= queue_.now() - p.service_start;
    p.current.reset();
    p.ready.push_back(preempted);
    dispatch(processor);
  }
}

void Platform::dispatch(std::uint32_t processor) {
  ProcessorState& p = processors_[processor];
  FCM_REQUIRE(!p.current.has_value(), "dispatch on a busy processor");
  if (p.ready.empty()) {
    disturbance_[processor].reset();
    return;
  }
  const SchedPolicy policy = spec_.processors[processor].policy;
  auto best = p.ready.begin();
  for (auto it = p.ready.begin(); it != p.ready.end(); ++it) {
    bool better = false;
    switch (policy) {
      case SchedPolicy::kPreemptiveEdf:
        better = it->absolute_deadline < best->absolute_deadline ||
                 (it->absolute_deadline == best->absolute_deadline &&
                  it->arrival_seq < best->arrival_seq);
        break;
      case SchedPolicy::kFixedPriorityDm: {
        const Duration d_it = spec_.tasks[it->task].deadline;
        const Duration d_best = spec_.tasks[best->task].deadline;
        better = d_it < d_best ||
                 (d_it == d_best && it->arrival_seq < best->arrival_seq);
        break;
      }
      case SchedPolicy::kNonPreemptiveFifo:
        better = it->arrival_seq < best->arrival_seq;
        break;
    }
    if (better) best = it;
  }
  p.current = *best;
  p.ready.erase(best);
  p.service_start = queue_.now();

  // Track whether a timing-inflated job is monopolizing this processor.
  const FaultInjection* injection =
      injection_for(p.current->task, p.current->activation);
  if (injection != nullptr && injection->kind == FaultKind::kTiming) {
    disturbance_[processor] = p.current->task;
  }

  p.completion_token = queue_.schedule_in(
      p.current->remaining, [this, processor] { complete_current(processor); });
}

void Platform::complete_current(std::uint32_t processor) {
  ProcessorState& p = processors_[processor];
  FCM_REQUIRE(p.current.has_value(), "completion on an idle processor");
  const Job job = *p.current;
  p.current.reset();
  finish_job(job);
  dispatch(processor);
}

void Platform::finish_job(const Job& job) {
  const TaskSpec& spec = spec_.tasks[job.task];
  TaskStats& stats = report_.tasks[job.task];
  TaskState& state = task_states_[job.task];
  ++stats.completions;

  // ---- Deadline check (timing failures). ----
  if (queue_.now() > job.absolute_deadline) {
    ++stats.deadline_misses;
    ++stats.failures;
    const std::uint32_t processor = spec.processor.value();
    const auto& blame = disturbance_[processor];
    if (blame.has_value() && *blame != job.task) {
      ++stats.propagated_failures;
      report_.propagations.push_back(
          PropagationEvent{*blame, job.task, queue_.now()});
    }
  }

  // ---- Gather input taint (p2 already applied at write/send time). ----
  Taint input;
  for (const RegionId region : spec.reads) {
    const Taint& t = regions_[region.value()];
    if (t.tainted && !input.tainted) input = t;
  }
  for (const ChannelId channel : spec.receives) {
    auto& pending = channel_queues_[channel.value()];
    for (const Taint& t : pending) {
      if (t.tainted && !input.tainted) input = t;
    }
    pending.clear();
  }

  bool erroneous = state.carried.tainted;
  Taint origin = state.carried;

  if (input.tainted) {
    ++stats.tainted_inputs;
    if (rng_.chance(spec.input_check)) {
      ++stats.detected_inputs;  // acceptance check drops the taint
    } else {
      // p3: does the erroneous input manifest as a failure here?
      if (rng_.chance(spec.manifestation)) {
        ++stats.failures;
        ++stats.propagated_failures;
        report_.propagations.push_back(
            PropagationEvent{input.origin, job.task, queue_.now()});
      }
      erroneous = true;
      if (!origin.tainted) origin = input;
    }
  }

  // ---- Own fault (p1): spontaneous or injected value fault. ----
  const FaultInjection* injection = injection_for(job.task, job.activation);
  const bool injected_value =
      injection != nullptr && injection->kind == FaultKind::kValue;
  if (injected_value || rng_.chance(spec.fault_rate)) {
    ++stats.own_faults;
    ++stats.failures;
    erroneous = true;
    origin = Taint{true, job.task};
  }

  // ---- Produce outputs, transmitting taint per medium (p2). ----
  for (const RegionId region : spec.writes) {
    const RegionSpec& rspec = spec_.regions[region.value()];
    if (erroneous && rng_.chance(rspec.write_transmission)) {
      regions_[region.value()] = origin;
    } else {
      regions_[region.value()] = Taint{};  // clean overwrite
    }
  }
  for (const ChannelId channel : spec.sends) {
    const ChannelSpec& cspec = spec_.channels[channel.value()];
    Taint message;
    if (erroneous && rng_.chance(cspec.transmission)) {
      message = origin;
    } else if (rng_.chance(cspec.corruption)) {
      message = Taint{true, job.task};  // medium noise, attributed to link
    }
    channel_queues_[channel.value()].push_back(message);
  }

  // Memory scribble: corrupt a reachable region outright.
  if (injection != nullptr && injection->kind == FaultKind::kMemoryScribble &&
      !spec.writes.empty()) {
    const RegionId victim =
        spec.writes[rng_.below(static_cast<std::uint32_t>(
            spec.writes.size()))];
    regions_[victim.value()] = Taint{true, job.task};
    ++stats.own_faults;
  }

  // Erroneous internal state survives only with the configured
  // persistence (default: transient faults, stateless across activations).
  state.carried = erroneous && rng_.chance(spec.state_persistence)
                      ? origin
                      : Taint{};
}

SimReport Platform::run(Duration horizon) {
  FCM_REQUIRE(!ran_, "a Platform instance runs exactly once");
  FCM_REQUIRE(horizon > Duration::zero(), "horizon must be positive");
  ran_ = true;
  horizon_ = horizon;

  // Platform-level events first, so a crash or corruption scheduled at the
  // same instant as a release acts before it (insertion-order tie-break).
  for (const TimedEvent& event : timed_events_) {
    if (event.at >= horizon) continue;
    queue_.schedule_at(Instant::epoch() + event.at, [this, event] {
      switch (event.kind) {
        case TimedEvent::Kind::kProcessorCrash:
          crash_processor(event.processor);
          break;
        case TimedEvent::Kind::kRegionCorruption:
          regions_[event.region.value()] = Taint{true, event.blame};
          break;
      }
    });
  }

  for (TaskIndex task = 0; task < spec_.tasks.size(); ++task) {
    const Duration offset = spec_.tasks[task].offset;
    if (offset < horizon) {
      queue_.schedule_at(Instant::epoch() + offset,
                         [this, task] { release_job(task, 0); });
    }
  }
  queue_.run();
  report_.events_dispatched = queue_.dispatched();
  return report_;
}

}  // namespace fcm::sim
