// Mapping quality: what makes a mapping "good" (§5.3).
//
// The paper names three criteria: satisfaction of constraints (always the
// primary concern), containment of faults ("mapping of FCMs which influence
// each other strongly onto the same node ... so the interaction between
// FCMs on different nodes is minimized"), and criticality ("critical
// processes should be assigned to distinct HW nodes"). `evaluate` computes
// all three plus the communication-dilation figure used in the §6 tradeoff
// discussion, and folds them into one comparable goodness score.
#pragma once

#include <string>
#include <vector>

#include "common/probability.h"
#include "core/separation.h"
#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/hw.h"
#include "sched/feasibility.h"

namespace fcm::mapping {

/// Relative weights folding the criteria into one score (higher = better).
struct QualityWeights {
  double containment = 0.5;   ///< 1 - normalized cross-node influence
  double criticality = 0.3;   ///< criticality dispersion across nodes
  double dilation = 0.2;      ///< 1 - normalized communication dilation
};

/// The evaluated quality of one clustering + assignment.
struct MappingQuality {
  // -- Satisfaction of constraints (primary; violations void the mapping) --
  bool replica_separation_ok = false;
  bool schedulable_ok = false;
  bool resources_ok = false;
  std::vector<std::string> violations;

  // -- Containment of faults --
  /// Σ of influence weights crossing HW nodes (lower = better containment).
  double cross_node_influence = 0.0;
  /// Σ of all influence weights in the unclustered SW graph (normalizer).
  double total_influence = 0.0;
  /// Smallest pairwise separation (Eq. 3) between distinct HW nodes.
  Probability min_separation;

  // -- Criticality dispersion --
  /// Largest summed criticality hosted by any single HW node; a HW fault
  /// there loses this much criticality at once.
  double max_colocated_criticality = 0.0;
  /// Number of critical-process pairs (criticality >= threshold) sharing a
  /// node — §5.3 wants this zero.
  int critical_pairs_colocated = 0;

  // -- Communication performance --
  /// Σ influence x hop-distance over HW node pairs (complete networks give
  /// hop distance 1 everywhere, so this equals cross_node_influence there).
  double dilation = 0.0;

  [[nodiscard]] bool constraints_satisfied() const noexcept {
    return replica_separation_ok && schedulable_ok && resources_ok;
  }

  /// Goodness in [0,1]; 0 when constraints are violated.
  [[nodiscard]] double score(const QualityWeights& weights = {}) const;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string report() const;
};

/// Criticality threshold above which a process counts as "critical" for the
/// colocated-pairs metric.
struct QualityOptions {
  core::Criticality critical_threshold = 7;
  sched::Policy policy = sched::Policy::kPreemptiveEdf;
  /// Optional memo for the Eq. 3 power-series analysis on the quotient
  /// matrix — the dominant cost when many candidate mappings are scored.
  /// Keys are content hashes, so identical quotients (e.g. two heuristics
  /// converging on the same clustering) reuse one analysis. Null = compute
  /// fresh each call.
  core::SeparationCache* separation_cache = nullptr;
};

/// Evaluates a complete mapping.
MappingQuality evaluate(const SwGraph& sw, const ClusteringResult& clustering,
                        const Assignment& assignment, const HwGraph& hw,
                        const QualityOptions& options = {});

}  // namespace fcm::mapping
