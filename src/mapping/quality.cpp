#include "mapping/quality.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "core/separation.h"

namespace fcm::mapping {

double MappingQuality::score(const QualityWeights& weights) const {
  if (!constraints_satisfied()) return 0.0;
  const double containment =
      total_influence > 0.0
          ? 1.0 - std::min(1.0, cross_node_influence / total_influence)
          : 1.0;
  // Criticality dispersion: best case is criticality spread evenly; we use
  // 1/(1 + colocated critical pairs) so each colocated pair hurts.
  const double dispersion =
      1.0 / (1.0 + static_cast<double>(critical_pairs_colocated));
  const double dilation_score =
      total_influence > 0.0
          ? 1.0 - std::min(1.0, dilation / (2.0 * total_influence))
          : 1.0;
  const double total =
      weights.containment + weights.criticality + weights.dilation;
  return (weights.containment * containment +
          weights.criticality * dispersion +
          weights.dilation * dilation_score) /
         (total > 0.0 ? total : 1.0);
}

std::string MappingQuality::report() const {
  std::ostringstream out;
  out << "constraints: "
      << (constraints_satisfied() ? "satisfied" : "VIOLATED") << '\n';
  for (const std::string& v : violations) out << "  ! " << v << '\n';
  out << "cross-node influence: " << cross_node_influence << " (of "
      << total_influence << " total)\n";
  out << "min separation: " << min_separation.value() << '\n';
  out << "max colocated criticality: " << max_colocated_criticality << '\n';
  out << "critical pairs colocated: " << critical_pairs_colocated << '\n';
  out << "dilation: " << dilation << '\n';
  out << "score: " << score() << '\n';
  return out.str();
}

MappingQuality evaluate(const SwGraph& sw, const ClusteringResult& clustering,
                        const Assignment& assignment, const HwGraph& hw,
                        const QualityOptions& options) {
  const graph::Partition& partition = clustering.partition;
  FCM_REQUIRE(assignment.hw_of.size() == partition.cluster_count,
              "assignment does not cover every cluster");

  MappingQuality q;
  const auto groups = partition.groups();

  // Replica anti-affinity.
  q.replica_separation_ok = true;
  for (const auto& members : groups) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (sw.replicas(members[i], members[j])) {
          q.replica_separation_ok = false;
          q.violations.push_back("replicas " + sw.node(members[i]).name +
                                 " and " + sw.node(members[j]).name +
                                 " share a HW node");
        }
      }
    }
  }

  // Schedulability per cluster (one-shot jobs through the policy oracle,
  // mixed workloads with periodic members through mixed_feasible).
  q.schedulable_ok = true;
  sched::FeasibilityOracle oracle(options.policy);
  for (std::uint32_t c = 0; c < groups.size(); ++c) {
    std::vector<sched::Job> jobs;
    std::vector<sched::PeriodicTask> periodic;
    for (const graph::NodeIndex v : groups[c]) {
      const SwNode& node = sw.node(v);
      if (!node.attributes.timing.has_value()) continue;
      if (node.attributes.timing->is_periodic()) {
        periodic.push_back(node.attributes.timing->to_periodic_task(node.name));
      } else {
        jobs.push_back(sw.job_of(v));
      }
    }
    const bool ok = periodic.empty()
                        ? oracle.feasible(jobs)
                        : sched::mixed_feasible(jobs, periodic);
    if (!ok) {
      q.schedulable_ok = false;
      q.violations.push_back("cluster {" + clustering.quotient.name(c) +
                             "} is not schedulable under " +
                             sched::to_string(options.policy));
    }
  }

  // Resource requirements.
  q.resources_ok = true;
  for (std::uint32_t c = 0; c < groups.size(); ++c) {
    const HwNode& host = hw.node(assignment.hw_of[c]);
    for (const graph::NodeIndex v : groups[c]) {
      for (const std::string& resource :
           sw.node(v).attributes.required_resources) {
        if (!host.resources.contains(resource)) {
          q.resources_ok = false;
          q.violations.push_back(sw.node(v).name + " requires resource '" +
                                 resource + "' absent from " + host.name);
        }
      }
    }
  }

  // Containment: influence crossing HW nodes, and the total influence of
  // the original SW graph (replica links are weight 0 and don't count).
  q.cross_node_influence = clustering.quotient.total_weight();
  q.total_influence = sw.influence_graph().total_weight();

  // Separation between clusters (Eq. 3 on the quotient influence matrix).
  if (partition.cluster_count >= 2) {
    graph::Matrix p(partition.cluster_count);
    for (const graph::Edge& e : clustering.quotient.edges()) {
      p.at(e.from, e.to) = e.weight;
    }
    if (options.separation_cache != nullptr) {
      q.min_separation = options.separation_cache->get(p).min_separation();
    } else {
      const core::SeparationAnalysis separation{p};
      q.min_separation = separation.min_separation();
    }
  } else {
    q.min_separation = Probability::one();
  }

  // Criticality dispersion.
  for (const auto& members : groups) {
    double colocated = 0.0;
    int critical_count = 0;
    for (const graph::NodeIndex v : members) {
      colocated += sw.node(v).attributes.criticality;
      if (sw.node(v).attributes.criticality >= options.critical_threshold) {
        ++critical_count;
      }
    }
    q.max_colocated_criticality =
        std::max(q.max_colocated_criticality, colocated);
    q.critical_pairs_colocated += critical_count * (critical_count - 1) / 2;
  }

  // Dilation: influence weight x hop distance between host nodes.
  for (const graph::Edge& e : clustering.quotient.edges()) {
    q.dilation += e.weight * hw.hop_distance(assignment.hw_of[e.from],
                                             assignment.hw_of[e.to]);
  }
  return q;
}

}  // namespace fcm::mapping
