#include "mapping/replanner.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/table.h"
#include "obs/obs.h"

namespace fcm::mapping {

namespace {

/// Ascending (importance, node index): the §5 shed order. The index
/// tie-break makes the order total, so every run sheds identically.
struct ShedOrder {
  const SwGraph* sw;
  bool operator()(graph::NodeIndex a, graph::NodeIndex b) const {
    const double ia = sw->node(a).importance;
    const double ib = sw->node(b).importance;
    if (ia != ib) return ia < ib;
    return a < b;
  }
};

SheddingRecord record_of(const SwGraph& sw, graph::NodeIndex v) {
  const SwNode& node = sw.node(v);
  SheddingRecord record;
  record.name = node.name;
  record.importance = node.importance;
  record.criticality = node.attributes.criticality;
  return record;
}

}  // namespace

std::vector<core::Criticality> ReplanResult::surviving_levels() const {
  std::set<core::Criticality> alive, lost;
  for (const ProcessSurvival& p : processes) {
    (p.survived() ? alive : lost).insert(p.criticality);
  }
  std::vector<core::Criticality> out;
  for (const core::Criticality c : alive) {
    if (lost.count(c) == 0) out.push_back(c);
  }
  return out;
}

std::vector<core::Criticality> ReplanResult::lost_levels() const {
  std::set<core::Criticality> lost;
  for (const ProcessSurvival& p : processes) {
    if (!p.survived()) lost.insert(p.criticality);
  }
  return {lost.begin(), lost.end()};
}

std::string ReplanResult::report(
    const HwGraph& hw, const std::vector<HwNodeId>& failed) const {
  std::ostringstream out;
  out << "replan: " << (feasible ? "feasible" : "INFEASIBLE")
      << " after losing {";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i > 0) out << ',';
    out << hw.node(failed[i]).name;
  }
  out << "}  attempts=" << attempts << '\n';
  if (feasible) {
    const auto names = clustering.cluster_names(surviving);
    for (std::uint32_t c = 0; c < names.size(); ++c) {
      out << "  " << hw.node(assignment.hw_of[c]).name << " <- {";
      for (std::size_t i = 0; i < names[c].size(); ++i) {
        if (i > 0) out << ',';
        out << names[c][i];
      }
      out << "}\n";
    }
  }
  for (const SheddingRecord& s : dropped_replicas) {
    out << "  dropped replica: " << s.name << " of " << s.process
        << " (criticality " << s.criticality << ")\n";
  }
  for (const SheddingRecord& s : shed) {
    out << "  shed: " << s.name << " of " << s.process << " (importance "
        << fmt(s.importance) << ", criticality " << s.criticality << ")\n";
  }
  for (const ProcessSurvival& p : processes) {
    out << "  " << p.name << ": replicas " << p.replicas_before << " -> "
        << p.replicas_after << (p.survived() ? "" : "  LOST")
        << "  (criticality " << p.criticality << ")\n";
  }
  if (feasible) out << quality.report();
  return out.str();
}

ReplanResult replan_after_loss(const SwGraph& sw,
                               const graph::Partition& old_partition,
                               const Assignment& old_assignment,
                               const HwGraph& hw,
                               const std::vector<HwNodeId>& failed,
                               const ReplanOptions& options) {
  FCM_REQUIRE(old_partition.cluster_of.size() == sw.node_count(),
              "partition does not cover the SW graph");
  FCM_REQUIRE(old_assignment.hw_of.size() == old_partition.cluster_count,
              "assignment does not cover every cluster");
  FCM_REQUIRE(options.max_attempts >= 1, "at least one attempt required");
  FCM_OBS_SPAN("replan.after_loss");
  FCM_OBS_COUNT("replan.invocations", 1);

  ReplanResult result;

  // ---- The failed-node set and the surviving HW graph. ----
  std::vector<bool> dead(hw.node_count(), false);
  for (const HwNodeId id : failed) {
    FCM_REQUIRE(id.valid() && id.value() < hw.node_count(),
                "failed HW node is unknown");
    dead[id.value()] = true;
  }
  HwGraph surviving_hw;
  std::vector<HwNodeId> orig_of_new;
  std::vector<std::uint32_t> new_of_orig(hw.node_count(), UINT32_MAX);
  for (const HwNode& node : hw.nodes()) {
    if (dead[node.id.value()]) continue;
    const HwNodeId fresh =
        surviving_hw.add_node(node.name, node.memory, node.resources);
    new_of_orig[node.id.value()] = fresh.value();
    orig_of_new.push_back(node.id);
  }
  for (const graph::Edge& link : hw.interconnect().edges()) {
    if (link.from >= link.to) continue;  // links are stored both ways
    if (dead[link.from] || dead[link.to]) continue;
    surviving_hw.add_link(HwNodeId(new_of_orig[link.from]),
                          HwNodeId(new_of_orig[link.to]), link.weight);
  }
  if (surviving_hw.node_count() == 0) {
    result.log.push_back("no HW node survives: nothing to replan onto");
    for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
      const SwNode& node = sw.node(v);
      auto it = std::find_if(
          result.processes.begin(), result.processes.end(),
          [&](const ProcessSurvival& p) { return p.origin == node.origin; });
      if (it == result.processes.end()) {
        ProcessSurvival p;
        p.origin = node.origin;
        p.name = node.name;
        p.criticality = node.attributes.criticality;
        result.processes.push_back(p);
        it = result.processes.end() - 1;
      }
      ++it->replicas_before;
    }
    return result;
  }

  // ---- Survivors: replicas whose host processor is still alive. ----
  std::vector<graph::NodeIndex> survivors;
  for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
    const std::uint32_t cluster = old_partition.cluster_of[v];
    const HwNodeId host = old_assignment.host(cluster);
    FCM_REQUIRE(host.valid() && host.value() < hw.node_count(),
                "old assignment references an unknown HW node");
    if (dead[host.value()]) {
      result.log.push_back("lost " + sw.node(v).name + " with " +
                           hw.node(host).name);
    } else {
      survivors.push_back(v);
    }
  }

  // ---- Per-process accounting; promote survivors of thinned processes.
  // A process with a dead replica but a live one is *promoted*: it stays in
  // service at reduced redundancy — the §5 weight-0 separation paying off.
  std::map<FcmId, std::size_t> process_index;
  for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
    const SwNode& node = sw.node(v);
    auto [it, inserted] =
        process_index.try_emplace(node.origin, result.processes.size());
    if (inserted) {
      ProcessSurvival p;
      p.origin = node.origin;
      p.name = node.name;
      p.criticality = node.attributes.criticality;
      result.processes.push_back(p);
    }
    ++result.processes[it->second].replicas_before;
  }
  // Canonical process names: strip replica suffixes by taking the name of
  // replica 0 without its suffix when the process is replicated.
  for (graph::NodeIndex v = 0; v < sw.node_count(); ++v) {
    const SwNode& node = sw.node(v);
    ProcessSurvival& p = result.processes[process_index.at(node.origin)];
    if (node.replica_index == 0 && p.replicas_before > 1) {
      const std::string suffix = replica_suffix(0);
      p.name = node.name.substr(0, node.name.size() - suffix.size());
    }
  }

  // ---- Capacity pre-pass: a process cannot keep more replicas than there
  // are surviving HW nodes (replicas never collocate). Drop the surplus —
  // highest replica index first — before clustering ever sees them.
  std::map<FcmId, std::vector<graph::NodeIndex>> surviving_replicas;
  for (const graph::NodeIndex v : survivors) {
    surviving_replicas[sw.node(v).origin].push_back(v);
  }
  std::set<graph::NodeIndex> dropped;
  for (auto& [origin, group] : surviving_replicas) {
    while (group.size() > surviving_hw.node_count()) {
      const graph::NodeIndex victim = group.back();
      group.pop_back();
      dropped.insert(victim);
      SheddingRecord record = record_of(sw, victim);
      record.process =
          result.processes[process_index.at(origin)].name;
      result.log.push_back("drop surplus replica " + record.name + " (" +
                           std::to_string(group.size()) +
                           " fit the surviving HW)");
      result.dropped_replicas.push_back(std::move(record));
    }
  }
  std::vector<graph::NodeIndex> candidates;
  for (const graph::NodeIndex v : survivors) {
    if (dropped.count(v) == 0) candidates.push_back(v);
  }

  // ---- Bounded retry/backoff: cluster + assign, shedding the
  // lowest-importance candidates when the instance will not fit. Shedding
  // "the batch least-important of the remaining" round after round composes
  // into "shed the first k of one global order", because ShedOrder is a
  // fixed total order over nodes — which is what makes the minimality
  // backtrack below possible. ----
  std::vector<graph::NodeIndex> order = candidates;
  std::sort(order.begin(), order.end(), ShedOrder{&sw});

  // One feasibility probe with the `shed_count` least-important candidates
  // removed. On success the repair artifacts land in `result` (hosts mapped
  // back to the original HW id space); on failure the violations land in
  // the log.
  const auto probe = [&](std::size_t shed_count, std::size_t attempt) {
    const std::set<graph::NodeIndex> to_shed(
        order.begin(),
        order.begin() + static_cast<std::ptrdiff_t>(shed_count));
    std::vector<graph::NodeIndex> kept;
    for (const graph::NodeIndex v : candidates) {
      if (to_shed.count(v) == 0) kept.push_back(v);
    }
    if (kept.empty()) {
      result.log.push_back("attempt " + std::to_string(attempt) +
                           ": no candidates remain");
      return false;
    }
    SwGraph sub = sw.subset(kept);
    ClusteringOptions copt;
    copt.target_clusters =
        std::min<std::size_t>(kept.size(), surviving_hw.node_count());
    copt.policy = options.policy;
    copt.resource_check = [&surviving_hw](const std::set<std::string>& need) {
      for (const HwNode& node : surviving_hw.nodes()) {
        if (std::includes(node.resources.begin(), node.resources.end(),
                          need.begin(), need.end())) {
          return true;
        }
      }
      return false;
    };
    try {
      ClusterEngine engine(sub, copt);
      ClusteringResult clustering = engine.h1_greedy();
      Assignment assignment = assign_by_importance(sub, clustering,
                                                   surviving_hw);
      QualityOptions qopt = options.quality;
      qopt.policy = options.policy;
      qopt.critical_threshold = options.critical_threshold;
      MappingQuality quality =
          evaluate(sub, clustering, assignment, surviving_hw, qopt);
      if (!quality.constraints_satisfied()) {
        for (const std::string& violation : quality.violations) {
          result.log.push_back("attempt " + std::to_string(attempt) +
                               " violation: " + violation);
        }
        return false;
      }
      result.feasible = true;
      result.kept = kept;
      result.clustering = std::move(clustering);
      result.quality = std::move(quality);
      // Report hosts in the original HW id space.
      for (HwNodeId& host : assignment.hw_of) {
        host = orig_of_new[host.value()];
      }
      result.assignment = std::move(assignment);
      result.surviving = std::move(sub);
      result.log.push_back(
          "attempt " + std::to_string(attempt) + ": repaired onto " +
          std::to_string(surviving_hw.node_count()) + " HW nodes, " +
          std::to_string(kept.size()) + " tasks in service");
      return true;
    } catch (const FcmError& error) {
      result.log.push_back("attempt " + std::to_string(attempt) +
                           " failed: " + error.what());
      return false;
    }
  };

  // Doubling-batch escalation: probe shed counts 0, 1, 3, 7, 15, ... —
  // the backoff that keeps deeply infeasible instances O(log n) attempts.
  std::size_t shed_count = 0;
  std::size_t batch = 1;
  std::size_t last_failed = 0;
  bool saw_failure = false;
  std::size_t feasible_shed = 0;
  while (result.attempts < options.max_attempts) {
    ++result.attempts;
    if (probe(shed_count, result.attempts)) {
      feasible_shed = shed_count;
      break;
    }
    if (shed_count >= order.size()) break;  // everything shed; give up
    last_failed = shed_count;
    saw_failure = true;
    shed_count = std::min(order.size(), shed_count + batch);
    batch *= 2;
  }

  // ---- Minimality backtrack: the doubling batch can overshoot the
  // feasibility boundary by up to ~2x, shedding tasks that would have fit.
  // Binary-search the smallest feasible shed prefix in
  // (last_failed, feasible_shed]; `result` always holds the artifacts of
  // the current upper end, because only successful probes rewrite it and
  // the upper end only moves onto them. ----
  if (result.feasible && saw_failure && feasible_shed > last_failed + 1) {
    std::size_t lo = last_failed;    // known infeasible
    std::size_t hi = feasible_shed;  // known feasible
    while (hi - lo > 1 && result.attempts < options.max_attempts) {
      ++result.attempts;
      const std::size_t mid = lo + (hi - lo) / 2;
      if (probe(mid, result.attempts)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    feasible_shed = hi;
  }

  // Record what was actually shed: the minimal feasible prefix, or — when
  // every escalation failed — the deepest prefix the escalation reached.
  const std::size_t recorded_shed = result.feasible ? feasible_shed
                                                    : shed_count;
  for (std::size_t i = 0; i < recorded_shed; ++i) {
    const graph::NodeIndex v = order[i];
    SheddingRecord record = record_of(sw, v);
    record.process =
        result.processes[process_index.at(sw.node(v).origin)].name;
    result.log.push_back("shed " + record.name + " (importance " +
                         std::to_string(record.importance) + ")");
    result.shed.push_back(std::move(record));
  }

  // ---- Post-replan process fates. ----
  if (result.feasible) {
    for (const graph::NodeIndex v : result.kept) {
      ++result.processes[process_index.at(sw.node(v).origin)].replicas_after;
    }
  }
  FCM_OBS_COUNT("replan.attempts", result.attempts);
  FCM_OBS_COUNT("replan.shed_tasks", result.shed.size());
  FCM_OBS_COUNT("replan.dropped_replicas", result.dropped_replicas.size());
  FCM_OBS_COUNT(result.feasible ? "replan.repaired" : "replan.unrepaired", 1);
  return result;
}

}  // namespace fcm::mapping
