// Online graceful-degradation replanning after HW loss.
//
// The paper's allocation machinery (§5) is motivated by surviving HW faults
// through replication: replicas joined by weight-0 edges must sit on
// distinct HW nodes precisely so that losing one node loses at most one
// replica. This module closes that loop at run time: given an existing
// mapping and a set of failed HW nodes, it promotes the surviving replicas
// (the process lives on with reduced redundancy), re-clusters the surviving
// SW graph over the surviving HW graph with bounded retry/backoff, and —
// when capacity is insufficient — sheds tasks in ascending §5 importance
// order until the schedulability check passes. Shedding is monotone by
// construction: a task is only ever shed while every strictly
// lower-importance retained candidate has already been shed.
#pragma once

#include <string>
#include <vector>

#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/hw.h"
#include "mapping/quality.h"

namespace fcm::mapping {

/// Knobs for the replanner's retry/backoff loop.
struct ReplanOptions {
  sched::Policy policy = sched::Policy::kPreemptiveEdf;
  /// Maximum clustering+assignment attempts before giving up. Each failed
  /// attempt shrinks the candidate set by the current shed batch and the
  /// batch doubles (1, 2, 4, ...) — exponential backoff in shed work, so a
  /// deeply infeasible instance converges in O(log n) attempts.
  std::size_t max_attempts = 8;
  /// Criticality threshold separating "critical" for reporting.
  core::Criticality critical_threshold = 7;
  QualityOptions quality;
};

/// One task removed from service (or one replica dropped) during replan.
struct SheddingRecord {
  std::string name;        ///< SW node name, e.g. "p4" or "p1c"
  std::string process;     ///< origin process name
  double importance = 0.0;
  core::Criticality criticality = 0;
};

/// Post-replan fate of one original process.
struct ProcessSurvival {
  FcmId origin;
  std::string name;
  core::Criticality criticality = 0;
  int replicas_before = 0;  ///< mapped replicas before the HW loss
  int replicas_after = 0;   ///< replicas mapped by the repaired plan
  [[nodiscard]] bool survived() const noexcept { return replicas_after > 0; }
};

/// The outcome of one replanning episode.
struct ReplanResult {
  bool feasible = false;
  /// Original SW node indices still mapped, ascending.
  std::vector<graph::NodeIndex> kept;
  /// The surviving sub-SW-graph actually planned (nodes = `kept`, in order).
  SwGraph surviving;
  ClusteringResult clustering;  ///< over `surviving`'s node indices
  /// Cluster hosts in the ORIGINAL HW graph's id space.
  Assignment assignment;
  MappingQuality quality;
  /// Tasks removed from service, in shed order (ascending importance).
  std::vector<SheddingRecord> shed;
  /// Surplus replicas dropped because fewer HW nodes survive than the
  /// replication degree requires (the process itself stays in service).
  std::vector<SheddingRecord> dropped_replicas;
  std::vector<ProcessSurvival> processes;
  std::vector<std::string> log;
  std::size_t attempts = 0;

  /// Criticality levels (ascending, deduplicated) with every process
  /// surviving / with at least one process lost.
  [[nodiscard]] std::vector<core::Criticality> surviving_levels() const;
  [[nodiscard]] std::vector<core::Criticality> lost_levels() const;

  /// Multi-line human-readable description of the episode: surviving
  /// clusters and hosts, shed tasks, dropped replicas, per-process replica
  /// counts, quality. Deterministic — the `fcm serve` replan query and the
  /// `fcm_tool replan` command both print exactly these bytes. `failed`
  /// names the HW nodes whose loss triggered the episode.
  [[nodiscard]] std::string report(const HwGraph& hw,
                                   const std::vector<HwNodeId>& failed) const;
};

/// Repairs `old_assignment` after the HW nodes in `failed` die. `sw` is the
/// full replication-expanded SW graph the original plan mapped;
/// `old_partition` + `old_assignment` locate each replica's host. Never
/// collocates two replicas of one process (the weight-0 anti-affinity holds
/// through ClusterEngine::can_combine on the surviving subgraph). Throws
/// InvalidArgument on malformed inputs; an unrepairable instance returns
/// `feasible == false` rather than throwing.
ReplanResult replan_after_loss(const SwGraph& sw,
                               const graph::Partition& old_partition,
                               const Assignment& old_assignment,
                               const HwGraph& hw,
                               const std::vector<HwNodeId>& failed,
                               const ReplanOptions& options = {});

}  // namespace fcm::mapping
