// End-to-end integration planning.
//
// The paper's §5 realization is "a two-phase technique: first, clustering of
// SW elements into FCMs; second, assigning these elements to processors".
// `IntegrationPlanner` drives the whole pipeline — SW graph construction
// with replication expansion, a chosen clustering heuristic, a chosen
// assignment approach, and quality evaluation — and can compare heuristics
// to pick the best-scoring feasible plan.
#pragma once

#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/influence.h"
#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/quality.h"

namespace fcm::mapping {

/// Clustering heuristic selector. kH1Hierarchical is the scale variant of
/// H1 (partition, cluster within parts in parallel, merge across); it is
/// selectable explicitly but excluded from the best_plan sweep, which
/// targets paper-sized systems where flat H1 subsumes it.
enum class Heuristic : std::uint8_t {
  kH1Greedy,
  kH1Rounds,
  kH2MinCut,
  kH2StCut,
  kH3Importance,
  kCriticalityPairing,
  kTimingOrdered,
  kH1Hierarchical,
};

const char* to_string(Heuristic heuristic) noexcept;

/// Assignment approach selector.
enum class Approach : std::uint8_t {
  kAImportance,     ///< Approach A: importance of tasks
  kBLexicographic,  ///< Approach B: importance of attributes
};

const char* to_string(Approach approach) noexcept;

/// One complete plan.
struct Plan {
  Heuristic heuristic = Heuristic::kH1Greedy;
  Approach approach = Approach::kAImportance;
  ClusteringResult clustering;
  Assignment assignment;
  MappingQuality quality;

  /// Multi-line description: clusters, hosts, quality report.
  [[nodiscard]] std::string report(const SwGraph& sw,
                                   const HwGraph& hw) const;
};

/// Options for planning.
struct PlanOptions {
  sched::Policy policy = sched::Policy::kPreemptiveEdf;
  QualityOptions quality;
  /// Worker threads for the best_plan heuristic sweep (0 = hardware
  /// concurrency, 1 = sequential). Candidates are independent, and the
  /// winner is always selected in the fixed heuristic order with a
  /// strictly-greater score rule, so the chosen plan is identical for
  /// every thread count.
  std::uint32_t sweep_threads = 1;
  /// Worker threads for the per-part runs of kH1Hierarchical
  /// (0 = FCM_THREADS / hardware concurrency). Plans are bitwise identical
  /// for every value.
  std::uint32_t cluster_threads = 0;
  /// Quotient maintenance mode for the greedy merge loops (see
  /// ClusteringOptions::incremental_quotient). Both settings produce
  /// bitwise-identical plans; `false` is the full-rebuild reference the CI
  /// differential gate compares against.
  bool incremental_quotient = true;
  /// Part count for kH1Hierarchical (0 = auto).
  std::size_t hierarchy_parts = 0;
};

/// Plans the integration of `processes` onto `hw`.
class IntegrationPlanner {
 public:
  IntegrationPlanner(const core::FcmHierarchy& hierarchy,
                     const core::InfluenceModel& influence,
                     std::vector<FcmId> processes, const HwGraph& hw,
                     PlanOptions options = {});

  /// The replication-expanded SW graph.
  [[nodiscard]] const SwGraph& sw_graph() const noexcept { return sw_; }

  /// Runs one heuristic + approach combination.
  Plan plan(Heuristic heuristic, Approach approach);

  /// Runs every heuristic with the given approach and returns the feasible
  /// plan with the highest quality score. When `sweep_threads` allows, the
  /// candidates are planned in parallel (one worker-local separation memo
  /// each); the selection pass is always sequential over the fixed
  /// heuristic order, so the result is identical for any thread count.
  /// Throws Infeasible when no heuristic produces a feasible plan.
  Plan best_plan(Approach approach = Approach::kAImportance);

  /// Hit/miss counters of the planner's Eq. 3 separation memo, merged with
  /// the counters of every worker-local memo used by parallel best_plan
  /// sweeps on this planner.
  [[nodiscard]] core::CacheStats separation_cache_stats() const noexcept {
    core::CacheStats merged = separation_cache_.stats();
    merged.hits += sweep_stats_.hits;
    merged.misses += sweep_stats_.misses;
    merged.invalidations += sweep_stats_.invalidations;
    merged.evictions += sweep_stats_.evictions;
    return merged;
  }

 private:
  /// One heuristic + approach candidate, scored through `cache`. Const and
  /// side-effect free apart from the cache, so candidates may run
  /// concurrently with per-worker caches.
  [[nodiscard]] Plan plan_with(Heuristic heuristic, Approach approach,
                               core::SeparationCache* cache) const;

  const HwGraph* hw_;
  PlanOptions options_;
  SwGraph sw_;
  /// Scores across heuristics repeatedly analyze candidate quotients;
  /// identical quotients (heuristics often converge on the same clustering)
  /// share one power-series analysis through this memo.
  core::SeparationCache separation_cache_;
  /// Accumulated stats of retired worker-local sweep memos.
  core::CacheStats sweep_stats_;
};

}  // namespace fcm::mapping
