// The SW allocation graph (§5.1) with replication expansion (§5.4, Fig. 4).
//
// "For SW, a weighted directed graph of process FCMs is created ... Nodes
// are the FCMs, with unidirectional edges weighted by influence. Replicas
// are connected by edges of weight 0; there is no edge in any other case of
// non-influence." Replication expansion: "Based on the fault tolerance
// requirements and need for, say, threefold replication, then an equivalent
// graph of three SW nodes with identical attributes and 0 edge weights is
// created ... Node p1 is replicated 3 times to satisfy its fault tolerance
// requirements, and edges with neighbors are also replicated."
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "core/hierarchy.h"
#include "core/importance.h"
#include "core/influence.h"
#include "graph/digraph.h"
#include "sched/job.h"

namespace fcm::mapping {

/// One node of the SW allocation graph: a replica of a process FCM.
struct SwNode {
  SwNodeId id;
  std::string name;       ///< e.g. "p1a" for the first replica of p1
  FcmId origin;           ///< the process FCM this node replicates
  int replica_index = 0;  ///< 0-based replica number
  core::Attributes attributes;
  double importance = 0.0;
};

/// The replication-expanded SW graph over process-level FCMs.
class SwGraph {
 public:
  /// Expands `processes` (process-level FCMs in `hierarchy`) into replica
  /// nodes, replicating influence edges across replicas and linking replica
  /// pairs with weight-0 edges labeled "replica".
  static SwGraph build(const core::FcmHierarchy& hierarchy,
                       const core::InfluenceModel& influence,
                       const std::vector<FcmId>& processes,
                       const core::ImportanceWeights& weights = {});

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const SwNode& node(SwNodeId id) const;
  [[nodiscard]] const SwNode& node(graph::NodeIndex index) const;
  [[nodiscard]] const std::vector<SwNode>& nodes() const noexcept {
    return nodes_;
  }

  /// The influence digraph over replica nodes (node index k corresponds to
  /// nodes()[k]); includes the weight-0 replica links.
  [[nodiscard]] const graph::Digraph& influence_graph() const noexcept {
    return graph_;
  }

  /// True when the two nodes are replicas of the same process FCM — they
  /// "cannot be combined, as the nodes contain replicas of the same module,
  /// which must be mapped onto different HW nodes" (§5.2).
  [[nodiscard]] bool replicas(graph::NodeIndex a, graph::NodeIndex b) const;

  /// The induced subgraph over `keep` (ascending, duplicate-free node
  /// indices): every edge between two kept nodes — including the weight-0
  /// replica links — survives, ids renumber densely, and surviving replicas
  /// are *promoted*: replica indices renumber per process and the
  /// replication attribute clamps to the replicas actually kept, so a TMR
  /// process reduced to one copy no longer demands three distinct clusters.
  /// This is what the graceful-degradation replanner re-clusters after
  /// replicas are lost with their host processor.
  [[nodiscard]] SwGraph subset(const std::vector<graph::NodeIndex>& keep)
      const;

  /// The node's timing constraints as a scheduling job (per-node JobId =
  /// node index). Throws InvalidArgument when the FCM has no timing spec.
  [[nodiscard]] sched::Job job_of(graph::NodeIndex index) const;

  /// Whether the node carries timing constraints.
  [[nodiscard]] bool has_timing(graph::NodeIndex index) const;

 private:
  std::vector<SwNode> nodes_;
  graph::Digraph graph_;
};

/// Replica suffix for index 0,1,2,... -> "a","b","c",...,"z","aa",...
std::string replica_suffix(int index);

}  // namespace fcm::mapping
