#include "mapping/assignment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.h"
#include "core/importance.h"

namespace fcm::mapping {

HwNodeId Assignment::host(std::uint32_t cluster) const {
  FCM_REQUIRE(cluster < hw_of.size(), "cluster index out of range");
  return hw_of[cluster];
}

const char* to_string(AttributeKey key) noexcept {
  switch (key) {
    case AttributeKey::kCriticality:
      return "criticality";
    case AttributeKey::kReplication:
      return "replication";
    case AttributeKey::kTimingUrgency:
      return "timing-urgency";
    case AttributeKey::kThroughput:
      return "throughput";
    case AttributeKey::kSecurity:
      return "security";
  }
  return "?";
}

namespace {

struct ClusterInfo {
  std::uint32_t index = 0;
  double importance = 0.0;
  core::Criticality criticality = 0;
  core::ReplicationDegree replication = 0;
  double urgency = 0.0;
  double throughput = 0.0;
  core::SecurityLevel security = 0;
  std::set<std::string> required_resources;
};

std::vector<ClusterInfo> summarize(const SwGraph& sw,
                                   const ClusteringResult& clustering) {
  std::vector<ClusterInfo> info(clustering.partition.cluster_count);
  for (std::uint32_t c = 0; c < info.size(); ++c) info[c].index = c;
  for (std::size_t v = 0; v < clustering.partition.cluster_of.size(); ++v) {
    const SwNode& node = sw.node(static_cast<graph::NodeIndex>(v));
    ClusterInfo& c = info[clustering.partition.cluster_of[v]];
    c.importance = std::max(c.importance, node.importance);
    c.criticality = std::max(c.criticality, node.attributes.criticality);
    c.replication = std::max(c.replication, node.attributes.replication);
    c.urgency = std::max(c.urgency, core::timing_urgency(node.attributes));
    c.throughput += node.attributes.throughput;
    c.security = std::max(c.security, node.attributes.security);
    c.required_resources.insert(node.attributes.required_resources.begin(),
                                node.attributes.required_resources.end());
  }
  return info;
}

bool resources_ok(const ClusterInfo& cluster, const HwNode& node) {
  return std::includes(node.resources.begin(), node.resources.end(),
                       cluster.required_resources.begin(),
                       cluster.required_resources.end());
}

/// Places clusters in the given order; each takes a resource-feasible HW
/// node, preferring low added dilation (Σ influence x hops to placed
/// clusters) and resource-poor nodes (so specialized nodes stay available
/// for the clusters that need them). Backtracks over node choices when the
/// greedy pick strands a later cluster's resource requirement.
struct Placer {
  const std::vector<std::uint32_t>& order;
  const std::vector<ClusterInfo>& info;
  const ClusteringResult& clustering;
  const HwGraph& hw;
  Assignment assignment;
  std::vector<bool> used;

  bool place(std::size_t position) {
    if (position == order.size()) return true;
    const std::uint32_t c = order[position];

    struct Candidate {
      HwNodeId node;
      double cost;
      std::size_t resources;
    };
    std::vector<Candidate> candidates;
    for (const HwNode& candidate : hw.nodes()) {
      if (used[candidate.id.value()]) continue;
      if (!resources_ok(info[c], candidate)) continue;
      double cost = 0.0;
      for (std::uint32_t other = 0; other < info.size(); ++other) {
        if (!assignment.hw_of[other].valid()) continue;
        const double influence =
            clustering.quotient.weight(c, other).value_or(0.0) +
            clustering.quotient.weight(other, c).value_or(0.0);
        if (influence > 0.0) {
          cost += influence *
                  hw.hop_distance(candidate.id, assignment.hw_of[other]);
        }
      }
      candidates.push_back(
          Candidate{candidate.id, cost, candidate.resources.size()});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.resources != b.resources)
                  return a.resources < b.resources;
                return a.node < b.node;
              });
    for (const Candidate& candidate : candidates) {
      used[candidate.node.value()] = true;
      assignment.hw_of[c] = candidate.node;
      if (place(position + 1)) return true;
      used[candidate.node.value()] = false;
      assignment.hw_of[c] = HwNodeId::invalid();
    }
    return false;
  }
};

Assignment place_in_order(const std::vector<std::uint32_t>& order,
                          const std::vector<ClusterInfo>& info,
                          const ClusteringResult& clustering,
                          const HwGraph& hw) {
  FCM_REQUIRE(info.size() <= hw.node_count(),
              "more clusters than HW nodes; cluster further first");
  Placer placer{order, info, clustering, hw, Assignment{}, {}};
  placer.assignment.hw_of.assign(info.size(), HwNodeId::invalid());
  placer.used.assign(hw.node_count(), false);
  if (!placer.place(0)) {
    throw Infeasible(
        "no assignment satisfies every cluster's resource requirements");
  }
  for (const std::uint32_t c : order) {
    placer.assignment.steps.push_back(
        "map {" + clustering.quotient.name(c) + "} -> " +
        hw.node(placer.assignment.hw_of[c]).name);
  }
  return placer.assignment;
}

}  // namespace

Assignment assign_by_importance(const SwGraph& sw,
                                const ClusteringResult& clustering,
                                const HwGraph& hw) {
  const std::vector<ClusterInfo> info = summarize(sw, clustering);
  std::vector<std::uint32_t> order(info.size());
  for (std::uint32_t c = 0; c < info.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (info[a].importance != info[b].importance) {
                return info[a].importance > info[b].importance;
              }
              return a < b;
            });
  return place_in_order(order, info, clustering, hw);
}

Assignment assign_lexicographic(const SwGraph& sw,
                                const ClusteringResult& clustering,
                                const HwGraph& hw,
                                const std::vector<AttributeKey>& priority) {
  FCM_REQUIRE(!priority.empty(), "attribute priority list must not be empty");
  const std::vector<ClusterInfo> info = summarize(sw, clustering);
  std::vector<std::uint32_t> order(info.size());
  for (std::uint32_t c = 0; c < info.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              for (const AttributeKey key : priority) {
                double va = 0.0, vb = 0.0;
                switch (key) {
                  case AttributeKey::kCriticality:
                    va = info[a].criticality;
                    vb = info[b].criticality;
                    break;
                  case AttributeKey::kReplication:
                    va = info[a].replication;
                    vb = info[b].replication;
                    break;
                  case AttributeKey::kTimingUrgency:
                    va = info[a].urgency;
                    vb = info[b].urgency;
                    break;
                  case AttributeKey::kThroughput:
                    va = info[a].throughput;
                    vb = info[b].throughput;
                    break;
                  case AttributeKey::kSecurity:
                    va = info[a].security;
                    vb = info[b].security;
                    break;
                }
                if (va != vb) return va > vb;
              }
              return a < b;
            });
  return place_in_order(order, info, clustering, hw);
}

}  // namespace fcm::mapping
