// The HW resource graph.
//
// "To facilitate the mapping, two graphs are created, one for SW FCMs, and
// one for available HW resources, which have been structured using a HW FCR
// model. For HW, an interconnection graph is used." (§5.1). The paper
// assumes homogeneous processors with access to equivalent resources (§2);
// the model still carries per-node capacities and named special resources so
// the "need for a resource present on only one processor" tradeoff of §6 can
// be expressed.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "graph/digraph.h"

namespace fcm::mapping {

/// One processing node of the HW platform (a HW fault containment region).
struct HwNode {
  HwNodeId id;
  std::string name;
  /// Memory capacity in abstract units; 0 = unconstrained.
  double memory = 0.0;
  /// Named special resources present at this node (e.g. "sensor-bus").
  std::set<std::string> resources;
};

/// The HW interconnection graph. Edges carry link bandwidth (abstract
/// units); hop distance is used for dilation-aware mapping.
class HwGraph {
 public:
  HwGraph() = default;

  /// A strongly connected network of `n` homogeneous nodes — the §6
  /// platform ("assume there is a strongly connected network with N HW
  /// nodes"). Complete graph, unit bandwidth.
  static HwGraph complete(int n, double link_bandwidth = 1.0);

  HwNodeId add_node(std::string name, double memory = 0.0,
                    std::set<std::string> resources = {});

  /// Bidirectional link with the given bandwidth.
  void add_link(HwNodeId a, HwNodeId b, double bandwidth);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const HwNode& node(HwNodeId id) const;
  [[nodiscard]] const std::vector<HwNode>& nodes() const noexcept {
    return nodes_;
  }

  [[nodiscard]] bool linked(HwNodeId a, HwNodeId b) const;

  /// Minimum hop count between two nodes (0 for a==b); throws Infeasible
  /// when disconnected.
  [[nodiscard]] int hop_distance(HwNodeId a, HwNodeId b) const;

  /// Every ordered node pair mutually reachable.
  [[nodiscard]] bool strongly_connected() const;

  /// The underlying interconnection digraph (both directions per link).
  [[nodiscard]] const graph::Digraph& interconnect() const noexcept {
    return graph_;
  }

 private:
  std::vector<HwNode> nodes_;
  graph::Digraph graph_;
};

}  // namespace fcm::mapping
