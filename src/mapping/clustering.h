// Clustering the SW graph down to the HW node count (§5.2, §5.4, §6).
//
// "Since, invariably, the SW graph has a much greater number of nodes than
// the HW graph, the SW graph must be condensed ... The problem to be solved
// is: Given a graph with directed weighted edges, group the nodes into sets
// such that the sum of weights between the sets is minimized. Deterministic
// solutions to this problem do not exist, or are analytically intractable."
//
// Implemented heuristics:
//   H1  greedy: repeatedly combine the two combinable clusters with the
//       highest mutual influence (§5.4), with the round-based "pair all
//       nodes" variation;
//   H2  recursive min-cut bisection (§5.4);
//   H3  importance spheres: seed with the n most important nodes and attach
//       neighbors below an importance threshold / above an influence
//       threshold (§5.4);
//   Approach-B criticality pairing (§6.2): most critical with least
//       critical, with the narrated conflict fallbacks;
//   timing-ordered first-fit (§6.2 closing technique, Fig. 8).
//
// Every combination step respects: replica anti-affinity ("two nodes
// connected by an edge of weight 0 cannot be combined") and collocation
// schedulability ("the processes in the cluster must all be schedulable").
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/influence.h"
#include "graph/quotient.h"
#include "mapping/swgraph.h"
#include "sched/feasibility.h"

namespace fcm::mapping {

/// Options shared by all clustering heuristics.
struct ClusteringOptions {
  /// Number of clusters to stop at (the HW node count).
  std::size_t target_clusters = 1;
  /// Scheduling policy assumed for a shared processor.
  sched::Policy policy = sched::Policy::kPreemptiveEdf;
  /// When false, timing feasibility is not checked (pure graph condensation).
  bool enforce_schedulability = true;
  /// Optional check that a cluster's combined resource requirements can be
  /// hosted by at least one HW node (prevents merging modules whose joint
  /// needs fit nowhere). Null = no resource constraint during clustering.
  std::function<bool(const std::set<std::string>&)> resource_check;
  /// Memoize cluster-pair influence across heuristic iterations. The cached
  /// and uncached paths produce bitwise-identical results (both combine the
  /// same edge weights in ascending edge order); the flag exists so the
  /// differential tests can prove it. Leave on.
  bool use_influence_cache = true;
  /// Select the greedy merge pair (H1 and the H2 repair phase) through a
  /// lazy-deletion max-heap instead of rescanning all O(k²) cluster pairs
  /// after every merge; only pairs touching the merged cluster are
  /// recomputed. Both paths produce identical merge sequences, step logs,
  /// and partitions (differentially tested); the scan remains as the
  /// reference. Leave on.
  bool use_pair_heap = true;
  /// Incremental quotient maintenance: a merge delta-updates only the
  /// bundles and heap candidates adjacent to the merged cluster (tracked
  /// through a per-representative neighbor index) instead of rescanning
  /// every bundle and re-pushing a candidate for every live cluster.
  /// Cluster pairs with zero mutual influence are then reached through a
  /// deterministic fallback scan once the heap drains — sound because a
  /// positive-mutual pair is always heap-resident until popped, and a
  /// popped pair that failed can_combine stays uncombinable until one of
  /// its clusters changes (which re-inserts it). `false` restores the
  /// full-rebuild behavior; both modes produce bitwise-identical merge
  /// sequences, partitions, and quotients (differentially tested).
  bool incremental_quotient = true;
  /// Record the human-readable per-merge step log. At thousands of nodes
  /// the joined member-name strings dominate memory and time; the scale
  /// bench turns this off. Results are unaffected.
  bool log_steps = true;
  /// Worker threads for the per-part clustering runs of h1_hierarchical
  /// (0 = FCM_THREADS / hardware concurrency, 1 = sequential). The result
  /// is bitwise identical for every value.
  std::uint32_t threads = 0;
  /// Partition count for h1_hierarchical (0 = auto: about one part per 96
  /// nodes, capped by the target cluster count).
  std::size_t hierarchy_parts = 0;
};

/// Ordering keys for the timing-ordered technique.
enum class OrderKey : std::uint8_t {
  kCriticality,  ///< descending criticality (summary attribute)
  kEst,          ///< ascending earliest start time
  kUrgency,      ///< descending timing urgency (CT / window)
};

/// Result of a clustering run.
struct ClusteringResult {
  graph::Partition partition;
  /// The condensed influence graph (Eq. 4 probabilistic edge combination;
  /// replica links excluded).
  graph::Digraph quotient;
  /// Human-readable log of each combination step.
  std::vector<std::string> steps;

  /// Cluster member names, e.g. {"p1a","p2a"}, ordered by cluster index.
  [[nodiscard]] std::vector<std::vector<std::string>> cluster_names(
      const SwGraph& sw) const;
  /// Sum of influence weights crossing cluster boundaries (the containment
  /// objective being minimized).
  [[nodiscard]] double cross_cluster_influence() const;
};

/// Stateful clustering engine over one SW graph.
class ClusterEngine {
 public:
  ClusterEngine(const SwGraph& sw, ClusteringOptions options);

  /// Whether the two clusters may combine: no replica pair across them and
  /// (when enforced) the union is single-processor schedulable.
  [[nodiscard]] bool can_combine(const graph::Partition& partition,
                                 std::uint32_t cluster_a,
                                 std::uint32_t cluster_b);

  /// H1 greedy: merge the highest-mutual-influence combinable pair until
  /// the target count. Throws Infeasible when no combinable pair remains
  /// above the target count.
  ClusteringResult h1_greedy();

  /// H1 variation: "pair all nodes based on influence values and then
  /// repeat the process" — each round forms disjoint pairs greedily, then
  /// rounds repeat. May overshoot-stop exactly at target mid-round.
  ClusteringResult h1_rounds();

  /// Hierarchical H1 for large graphs: partition the SW nodes first
  /// (min-cut bisection for small parts, deterministic BFS-order bisection
  /// for large ones), run H1 to a proportional local target within each
  /// part — in parallel on `fcm::exec` when `options.threads` allows — and
  /// finally H1-merge the composed clustering down to the global target.
  /// This keeps the greedy merge loop quadratic only within parts, not
  /// globally. The result is bitwise identical for every thread count:
  /// parts are deterministic, each local run depends only on its own
  /// subgraph, and composition and the final merge happen in fixed part
  /// order. With `hierarchy_parts` ≤ 1 (or a graph small enough that the
  /// auto part count is 1), this is exactly h1_greedy.
  ClusteringResult h1_hierarchical();

  /// H2: recursive min-cut bisection of the largest part until the target
  /// count, then constraint repair (split invalid parts, re-merge best
  /// pairs).
  ClusteringResult h2_mincut();

  /// The §5.4 H2 variation "cut the graph using source and target nodes":
  /// the first split is the minimum cut separating the two given SW nodes
  /// (e.g. two replicas, or two processes that must not share a fault
  /// region); the recursion then proceeds as in h2_mincut. By default the
  /// two most important SW nodes are separated.
  ClusteringResult h2_st_cut(
      std::optional<graph::NodeIndex> source = std::nullopt,
      std::optional<graph::NodeIndex> target = std::nullopt);

  /// H3: seed with the `target_clusters` most important nodes; attach every
  /// other node to the combinable adjacent cluster of highest mutual
  /// influence, provided the node's importance is below
  /// `importance_threshold` or the influence is above `influence_threshold`.
  ClusteringResult h3_importance(double importance_threshold = 1.0,
                                 double influence_threshold = 0.0);

  /// §6.2 Approach B: sort by criticality, combine most critical with least
  /// critical; on timing conflict walk to the preceding process; on a final
  /// replicate conflict, dissolve the previous pair as the paper narrates.
  ClusteringResult criticality_pairing();

  /// §6.2 closing technique (Fig. 8): order nodes by `key`, first-fit into
  /// at most `target_clusters` bins of at most `max_per_cluster` members
  /// (0 = ceil(n/target)), respecting replica and schedulability
  /// constraints.
  ClusteringResult timing_ordered(OrderKey key = OrderKey::kCriticality,
                                  std::size_t max_per_cluster = 0);

  /// Number of schedulability-oracle analyses performed so far.
  [[nodiscard]] std::size_t oracle_analyses() const noexcept {
    return oracle_.analyses();
  }

  /// Hit/miss/invalidation counters of the cluster-pair influence cache,
  /// accumulated over every heuristic run on this engine.
  [[nodiscard]] const core::CacheStats& influence_cache_stats()
      const noexcept {
    return quotient_cache_.stats();
  }

  /// Incremental cluster-pair influence under a shrinking partition.
  ///
  /// The greedy heuristics (H1, H3, the H2 repair phase) previously rebuilt
  /// the full quotient influence graph from every SW edge on every merge
  /// iteration. This cache maintains, per ordered cluster pair, the sorted
  /// list of SW influence edges crossing the pair (replica links excluded)
  /// plus a memo of the Eq. 4 probabilistic combination. Clusters are keyed
  /// by their *representative* — the smallest member node index — which is
  /// stable under merging (the union's representative is the min of the two
  /// inputs). A merge folds the two clusters' bundles and invalidates only
  /// the memo entries touching them; every other pair's value survives.
  /// Combination multiplies weights in ascending edge order, exactly the
  /// order `influence_quotient` uses, so cached, uncached, and full-rebuild
  /// values are bitwise identical.
  ///
  /// Public (rather than an implementation detail) so the incremental-vs-
  /// rebuild property tests can drive merges directly and compare against
  /// an independently rebuilt quotient.
  class QuotientCache {
   public:
    /// Rebuilds bundles and the neighbor index for the partition; keeps
    /// accumulated stats. `incremental` selects the merge maintenance mode
    /// (see ClusteringOptions::incremental_quotient); both modes yield
    /// identical bundles, memo contents, and neighbor indices.
    void reset(const SwGraph& sw, const graph::Partition& partition,
               bool incremental = true);
    /// Mutual influence between the clusters represented by `rep_a` and
    /// `rep_b` (Eq. 4 combination per direction, summed). `memoize` off
    /// recomputes from the bundles without touching the memo or stats.
    [[nodiscard]] double mutual(graph::NodeIndex rep_a,
                                graph::NodeIndex rep_b, bool memoize);
    /// Folds the two clusters' bundles after a partition merge. In
    /// incremental mode the affected bundles are found through the
    /// neighbor index in O(degree); in rebuild mode every bundle is
    /// scanned, as the original implementation did.
    void merge(graph::NodeIndex rep_a, graph::NodeIndex rep_b);
    /// Representatives whose clusters share at least one crossing influence
    /// edge with `rep`'s cluster, ascending. Pairs not listed here have
    /// mutual influence exactly 0.0.
    [[nodiscard]] const std::vector<graph::NodeIndex>& neighbors(
        graph::NodeIndex rep) const;
    [[nodiscard]] const core::CacheStats& stats() const noexcept {
      return stats_;
    }

   private:
    [[nodiscard]] double directed(graph::NodeIndex rep_from,
                                  graph::NodeIndex rep_to, bool memoize);
    [[nodiscard]] double combine(std::uint64_t key) const;
    void merge_scan_all(graph::NodeIndex rep_a, graph::NodeIndex rep_b,
                        graph::NodeIndex merged);
    void merge_incremental(graph::NodeIndex rep_a, graph::NodeIndex rep_b,
                           graph::NodeIndex merged);
    /// Moves bundle `key` (if present) into `target`, folding into any
    /// bundle already there (merge of two ascending runs stays ascending).
    void fold_bundle_into(std::uint64_t key, std::uint64_t target);
    void recycle(std::vector<std::uint32_t>&& bundle);
    [[nodiscard]] std::vector<std::uint32_t> fresh_bundle();
    void update_adjacency_after_merge(graph::NodeIndex rep_a,
                                      graph::NodeIndex rep_b,
                                      graph::NodeIndex merged);

    const SwGraph* sw_ = nullptr;
    bool incremental_ = true;
    // (rep_from << 32 | rep_to) -> ascending indices into sw edges().
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> bundles_;
    std::unordered_map<std::uint64_t, double> combined_;
    // Memo keys touching each representative, so merge() invalidates by
    // direct lookup instead of scanning the whole memo (the memo holds up
    // to all cluster pairs; a full scan per merge dominated H1 at scale).
    // Entries may be stale — erasing a key that is already gone is a no-op.
    std::unordered_map<graph::NodeIndex, std::vector<std::uint64_t>>
        memo_keys_by_rep_;
    // Representative -> sorted bundle-neighbor representatives (either
    // direction). Maintained exactly (no stale entries) by reset/merge.
    std::unordered_map<graph::NodeIndex, std::vector<graph::NodeIndex>>
        adjacency_;
    // Pooled transient storage for the merge loop: retired bundle vectors
    // are recycled instead of freed, and the scratch lists below keep their
    // capacity across merges.
    std::vector<std::vector<std::uint32_t>> bundle_pool_;
    std::vector<graph::NodeIndex> affected_scratch_;
    std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>>
        moved_scratch_;
    core::CacheStats stats_;
  };

 private:
  /// Whether the union of the members' resource requirements passes the
  /// configured resource check (true when no check is configured).
  [[nodiscard]] bool resources_hostable(
      const std::vector<graph::NodeIndex>& members) const;
  /// Whether the members can share one processor: one-shot jobs go through
  /// the memoizing EDF oracle; mixtures with periodic tasks use
  /// sched::mixed_feasible.
  [[nodiscard]] bool members_schedulable(
      const std::vector<graph::NodeIndex>& members);
  /// Step-log flavor of the shared greedy merge loop.
  enum class GreedyStepStyle : std::uint8_t {
    kCombine,      ///< H1: "combine A + B (mutual influence m)"
    kRepairMerge,  ///< H2 repair: "repair-merge A + B"
  };
  /// Merges the highest-mutual-influence combinable pair until the target
  /// cluster count, appending one step per merge. Dispatches to the pair
  /// heap or the full rescan per `options_.use_pair_heap`; both paths pick
  /// identical pairs (max mutual influence, ties broken toward the lowest
  /// cluster indices). Throws Infeasible with `infeasible_what` context
  /// when no combinable pair remains.
  void greedy_merge_to_target(graph::Partition& partition,
                              std::vector<std::string>& steps,
                              GreedyStepStyle style);
  void greedy_merge_scan(graph::Partition& partition,
                         std::vector<std::string>& steps,
                         GreedyStepStyle style);
  void greedy_merge_heap(graph::Partition& partition,
                         std::vector<std::string>& steps,
                         GreedyStepStyle style);
  [[nodiscard]] static std::string greedy_step_text(GreedyStepStyle style,
                                                    const std::string& a_names,
                                                    const std::string& b_names,
                                                    double mutual);
  [[noreturn]] void throw_no_combinable_pair(
      const graph::Partition& partition, GreedyStepStyle style) const;
  /// Splits all SW nodes into `parts_wanted` deterministic parts for
  /// h1_hierarchical: recursively bisect the largest part — Stoer–Wagner
  /// min-cut when the part is small, BFS-order halving (over the positive-
  /// weight influence edges) when it is large. Parts are ascending node
  /// lists in creation order.
  [[nodiscard]] std::vector<std::vector<graph::NodeIndex>>
  partition_for_hierarchy(std::size_t parts_wanted) const;
  /// Shared H2 machinery: bisect the largest part until the target count,
  /// repair constraint violations, re-merge any overshoot.
  ClusteringResult h2_driver(
      std::vector<std::vector<graph::NodeIndex>> parts,
      std::vector<std::string> steps);
  [[nodiscard]] ClusteringResult finish(graph::Partition partition,
                                        std::vector<std::string> steps) const;
  /// Quotient with replica links dropped and probabilistic combination.
  [[nodiscard]] graph::Digraph influence_quotient(
      const graph::Partition& partition) const;

  const SwGraph* sw_;
  ClusteringOptions options_;
  sched::FeasibilityOracle oracle_;
  QuotientCache quotient_cache_;
};

}  // namespace fcm::mapping
