#include "mapping/clustering.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "core/importance.h"
#include "exec/executor.h"
#include "graph/maxflow.h"
#include "graph/mincut.h"
#include "obs/obs.h"

namespace fcm::mapping {

namespace {

std::string join_names(const SwGraph& sw,
                       const std::vector<graph::NodeIndex>& members) {
  std::string out;
  for (const graph::NodeIndex m : members) {
    if (!out.empty()) out += ',';
    out += sw.node(m).name;
  }
  return out;
}

}  // namespace

void ClusterEngine::QuotientCache::reset(const SwGraph& sw,
                                         const graph::Partition& partition,
                                         bool incremental) {
  sw_ = &sw;
  incremental_ = incremental;
  bundles_.clear();
  stats_.invalidations += combined_.size();
  FCM_OBS_COUNT("quotient_cache.invalidations", combined_.size());
  combined_.clear();
  memo_keys_by_rep_.clear();
  adjacency_.clear();
  bundle_pool_.clear();
  // Representative of each cluster: its smallest member node index.
  std::vector<graph::NodeIndex> rep(partition.cluster_count,
                                    graph::NodeIndex(0));
  std::vector<bool> seen(partition.cluster_count, false);
  for (std::size_t v = 0; v < partition.cluster_of.size(); ++v) {
    const std::uint32_t c = partition.cluster_of[v];
    if (!seen[c]) {
      seen[c] = true;
      rep[c] = static_cast<graph::NodeIndex>(v);
    }
  }
  const auto& edges = sw.influence_graph().edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const graph::Edge& edge = edges[e];
    if (sw.replicas(edge.from, edge.to)) continue;  // 0-weight replica links
    const std::uint32_t ca = partition.cluster_of[edge.from];
    const std::uint32_t cb = partition.cluster_of[edge.to];
    if (ca == cb) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(rep[ca]) << 32) | rep[cb];
    bundles_[key].push_back(static_cast<std::uint32_t>(e));
    adjacency_[rep[ca]].push_back(rep[cb]);
    adjacency_[rep[cb]].push_back(rep[ca]);
  }
  // Edge iteration order already leaves each bundle ascending.
  for (auto& [r, adj] : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
}

const std::vector<graph::NodeIndex>& ClusterEngine::QuotientCache::neighbors(
    graph::NodeIndex rep) const {
  static const std::vector<graph::NodeIndex> kEmpty;
  const auto it = adjacency_.find(rep);
  return it == adjacency_.end() ? kEmpty : it->second;
}

void ClusterEngine::QuotientCache::recycle(std::vector<std::uint32_t>&& bundle) {
  bundle.clear();
  bundle_pool_.push_back(std::move(bundle));
}

std::vector<std::uint32_t> ClusterEngine::QuotientCache::fresh_bundle() {
  if (bundle_pool_.empty()) return {};
  std::vector<std::uint32_t> bundle = std::move(bundle_pool_.back());
  bundle_pool_.pop_back();
  FCM_OBS_COUNT("quotient_cache.pool_reuses", 1);
  return bundle;
}

double ClusterEngine::QuotientCache::combine(std::uint64_t key) const {
  const auto it = bundles_.find(key);
  if (it == bundles_.end()) return 0.0;
  // Eq. 4 over the crossing edges, multiplying complements in ascending
  // edge order — the exact operation order of combine_probabilistic over
  // the bundle influence_quotient() would collect.
  const auto& edges = sw_->influence_graph().edges();
  double none = 1.0;
  for (const std::uint32_t e : it->second) none *= 1.0 - edges[e].weight;
  return std::clamp(1.0 - none, 0.0, 1.0);
}

double ClusterEngine::QuotientCache::directed(graph::NodeIndex rep_from,
                                              graph::NodeIndex rep_to,
                                              bool memoize) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(rep_from) << 32) | rep_to;
  if (!memoize) return combine(key);
  if (const auto it = combined_.find(key); it != combined_.end()) {
    ++stats_.hits;
    FCM_OBS_COUNT("quotient_cache.hits", 1);
    return it->second;
  }
  ++stats_.misses;
  FCM_OBS_COUNT("quotient_cache.misses", 1);
  const double value = combine(key);
  combined_.emplace(key, value);
  memo_keys_by_rep_[rep_from].push_back(key);
  memo_keys_by_rep_[rep_to].push_back(key);
  return value;
}

double ClusterEngine::QuotientCache::mutual(graph::NodeIndex rep_a,
                                            graph::NodeIndex rep_b,
                                            bool memoize) {
  return directed(rep_a, rep_b, memoize) + directed(rep_b, rep_a, memoize);
}

void ClusterEngine::QuotientCache::merge(graph::NodeIndex rep_a,
                                         graph::NodeIndex rep_b) {
  const graph::NodeIndex merged = std::min(rep_a, rep_b);
  if (incremental_) {
    FCM_OBS_COUNT("quotient_cache.delta_merges", 1);
    merge_incremental(rep_a, rep_b, merged);
  } else {
    FCM_OBS_COUNT("quotient_cache.rebuild_merges", 1);
    merge_scan_all(rep_a, rep_b, merged);
  }
  update_adjacency_after_merge(rep_a, rep_b, merged);
  // Drop memo entries involving either input (the merged cluster reuses
  // rep == min(rep_a, rep_b), so its stale values are covered too). Every
  // memo entry was indexed under both endpoints at insertion, so the two
  // reps' key lists cover exactly the entries a full memo scan would find;
  // keys already invalidated through the other endpoint erase as no-ops.
  for (const graph::NodeIndex rep : {rep_a, rep_b}) {
    const auto keys = memo_keys_by_rep_.find(rep);
    if (keys == memo_keys_by_rep_.end()) continue;
    for (const std::uint64_t key : keys->second) {
      const std::size_t erased = combined_.erase(key);
      stats_.invalidations += erased;
      FCM_OBS_COUNT("quotient_cache.invalidations", erased);
    }
    memo_keys_by_rep_.erase(keys);
  }
}

void ClusterEngine::QuotientCache::merge_scan_all(graph::NodeIndex rep_a,
                                                  graph::NodeIndex rep_b,
                                                  graph::NodeIndex merged) {
  // Re-bucket every bundle touching either input cluster; edges between
  // the two become internal and disappear.
  auto& moved = moved_scratch_;
  moved.clear();
  for (auto it = bundles_.begin(); it != bundles_.end();) {
    const auto from = static_cast<graph::NodeIndex>(it->first >> 32);
    const auto to = static_cast<graph::NodeIndex>(it->first & 0xFFFFFFFFu);
    const bool from_hit = from == rep_a || from == rep_b;
    const bool to_hit = to == rep_a || to == rep_b;
    if (!from_hit && !to_hit) {
      ++it;
      continue;
    }
    if (!(from_hit && to_hit)) {  // edges inside the union just vanish
      const graph::NodeIndex new_from = from_hit ? merged : from;
      const graph::NodeIndex new_to = to_hit ? merged : to;
      moved.emplace_back(
          (static_cast<std::uint64_t>(new_from) << 32) | new_to,
          std::move(it->second));
    } else {
      recycle(std::move(it->second));
    }
    it = bundles_.erase(it);
  }
  for (auto& [key, indices] : moved) {
    auto& bundle = bundles_[key];
    bundle.insert(bundle.end(), indices.begin(), indices.end());
    // Two clusters' bundles may both feed one target pair; restore the
    // canonical ascending edge order a fresh rebuild would produce.
    std::sort(bundle.begin(), bundle.end());
    recycle(std::move(indices));
  }
}

void ClusterEngine::QuotientCache::fold_bundle_into(std::uint64_t key,
                                                    std::uint64_t target) {
  const auto it = bundles_.find(key);
  if (it == bundles_.end()) return;
  std::vector<std::uint32_t> indices = std::move(it->second);
  bundles_.erase(it);
  const auto slot = bundles_.find(target);
  if (slot == bundles_.end()) {
    bundles_.emplace(target, std::move(indices));
    return;
  }
  // Both input clusters fed this target pair: merge the two ascending runs
  // into the canonical ascending edge order a fresh rebuild would produce.
  std::vector<std::uint32_t> folded = fresh_bundle();
  folded.reserve(slot->second.size() + indices.size());
  std::merge(slot->second.begin(), slot->second.end(), indices.begin(),
             indices.end(), std::back_inserter(folded));
  recycle(std::move(slot->second));
  recycle(std::move(indices));
  slot->second = std::move(folded);
}

void ClusterEngine::QuotientCache::merge_incremental(graph::NodeIndex rep_a,
                                                     graph::NodeIndex rep_b,
                                                     graph::NodeIndex merged) {
  // Delta update: only bundles adjacent to the two input clusters can be
  // affected, and the neighbor index knows exactly which those are — no
  // scan over the remaining bundles. Identical post-state to
  // merge_scan_all (differentially tested).
  auto& affected = affected_scratch_;
  affected.clear();
  for (const graph::NodeIndex rep : {rep_a, rep_b}) {
    for (const graph::NodeIndex c : neighbors(rep)) {
      if (c != rep_a && c != rep_b) affected.push_back(c);
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  // Edges between the two inputs become internal and disappear.
  for (const std::uint64_t key :
       {(static_cast<std::uint64_t>(rep_a) << 32) | rep_b,
        (static_cast<std::uint64_t>(rep_b) << 32) | rep_a}) {
    const auto it = bundles_.find(key);
    if (it == bundles_.end()) continue;
    recycle(std::move(it->second));
    bundles_.erase(it);
  }
  const graph::NodeIndex other = std::max(rep_a, rep_b);
  for (const graph::NodeIndex c : affected) {
    FCM_OBS_COUNT("quotient_cache.delta_updates", 1);
    // merged == min(rep_a, rep_b), so the min-side bundle already sits
    // under the target key; only the max side needs folding in.
    fold_bundle_into((static_cast<std::uint64_t>(other) << 32) | c,
                     (static_cast<std::uint64_t>(merged) << 32) | c);
    fold_bundle_into((static_cast<std::uint64_t>(c) << 32) | other,
                     (static_cast<std::uint64_t>(c) << 32) | merged);
  }
}

void ClusterEngine::QuotientCache::update_adjacency_after_merge(
    graph::NodeIndex rep_a, graph::NodeIndex rep_b, graph::NodeIndex merged) {
  std::vector<graph::NodeIndex> adj_a, adj_b;
  if (const auto it = adjacency_.find(rep_a); it != adjacency_.end()) {
    adj_a = std::move(it->second);
    adjacency_.erase(it);
  }
  if (const auto it = adjacency_.find(rep_b); it != adjacency_.end()) {
    adj_b = std::move(it->second);
    adjacency_.erase(it);
  }
  std::vector<graph::NodeIndex> merged_adj;
  merged_adj.reserve(adj_a.size() + adj_b.size());
  std::merge(adj_a.begin(), adj_a.end(), adj_b.begin(), adj_b.end(),
             std::back_inserter(merged_adj));
  merged_adj.erase(std::unique(merged_adj.begin(), merged_adj.end()),
                   merged_adj.end());
  merged_adj.erase(  // edges between the two inputs became internal
      std::remove_if(merged_adj.begin(), merged_adj.end(),
                     [&](graph::NodeIndex c) {
                       return c == rep_a || c == rep_b;
                     }),
      merged_adj.end());
  const graph::NodeIndex other = std::max(rep_a, rep_b);
  for (const graph::NodeIndex c : merged_adj) {
    auto& adj = adjacency_[c];
    const auto drop = std::lower_bound(adj.begin(), adj.end(), other);
    if (drop != adj.end() && *drop == other) adj.erase(drop);
    const auto put = std::lower_bound(adj.begin(), adj.end(), merged);
    if (put == adj.end() || *put != merged) adj.insert(put, merged);
  }
  if (!merged_adj.empty()) adjacency_[merged] = std::move(merged_adj);
}

std::vector<std::vector<std::string>> ClusteringResult::cluster_names(
    const SwGraph& sw) const {
  std::vector<std::vector<std::string>> names(partition.cluster_count);
  for (std::size_t v = 0; v < partition.cluster_of.size(); ++v) {
    names[partition.cluster_of[v]].push_back(
        sw.node(static_cast<graph::NodeIndex>(v)).name);
  }
  return names;
}

double ClusteringResult::cross_cluster_influence() const {
  return quotient.total_weight();
}

ClusterEngine::ClusterEngine(const SwGraph& sw, ClusteringOptions options)
    : sw_(&sw), options_(options), oracle_(options.policy) {
  FCM_REQUIRE(options_.target_clusters >= 1,
              "target cluster count must be positive");
  // Replicas of one process need that many distinct clusters.
  std::map<FcmId, int> degree;
  for (const SwNode& n : sw.nodes()) {
    degree[n.origin] = std::max(degree[n.origin], n.replica_index + 1);
  }
  for (const auto& [origin, count] : degree) {
    FCM_REQUIRE(
        options_.target_clusters >= static_cast<std::size_t>(count),
        "replication degree " + std::to_string(count) +
            " exceeds the target cluster count (" +
            std::to_string(options_.target_clusters) +
            "): replicas must map to distinct HW nodes");
  }
}

bool ClusterEngine::members_schedulable(
    const std::vector<graph::NodeIndex>& members) {
  std::vector<sched::Job> jobs;
  std::vector<sched::PeriodicTask> periodic;
  for (const graph::NodeIndex v : members) {
    const SwNode& node = sw_->node(v);
    if (!node.attributes.timing.has_value()) continue;
    const core::TimingSpec& timing = *node.attributes.timing;
    if (timing.is_periodic()) {
      periodic.push_back(timing.to_periodic_task(node.name));
    } else {
      jobs.push_back(timing.to_job(JobId(v), node.name));
    }
  }
  if (periodic.empty()) return oracle_.feasible(jobs);
  return sched::mixed_feasible(jobs, periodic);
}

bool ClusterEngine::resources_hostable(
    const std::vector<graph::NodeIndex>& members) const {
  std::set<std::string> combined;
  for (const graph::NodeIndex v : members) {
    const auto& req = sw_->node(v).attributes.required_resources;
    combined.insert(req.begin(), req.end());
  }
  return combined.empty() || options_.resource_check(combined);
}

bool ClusterEngine::can_combine(const graph::Partition& partition,
                                std::uint32_t cluster_a,
                                std::uint32_t cluster_b) {
  if (cluster_a == cluster_b) return false;
  // Replica anti-affinity across the union.
  std::vector<graph::NodeIndex> a_members, b_members;
  for (std::size_t v = 0; v < partition.cluster_of.size(); ++v) {
    if (partition.cluster_of[v] == cluster_a) {
      a_members.push_back(static_cast<graph::NodeIndex>(v));
    } else if (partition.cluster_of[v] == cluster_b) {
      b_members.push_back(static_cast<graph::NodeIndex>(v));
    }
  }
  for (const graph::NodeIndex a : a_members) {
    for (const graph::NodeIndex b : b_members) {
      if (sw_->replicas(a, b)) return false;
    }
  }
  if (options_.resource_check) {
    std::set<std::string> combined;
    for (const graph::NodeIndex v : a_members) {
      const auto& req = sw_->node(v).attributes.required_resources;
      combined.insert(req.begin(), req.end());
    }
    for (const graph::NodeIndex v : b_members) {
      const auto& req = sw_->node(v).attributes.required_resources;
      combined.insert(req.begin(), req.end());
    }
    if (!combined.empty() && !options_.resource_check(combined)) return false;
  }
  if (!options_.enforce_schedulability) return true;
  std::vector<graph::NodeIndex> all = a_members;
  all.insert(all.end(), b_members.begin(), b_members.end());
  return members_schedulable(all);
}

graph::Digraph ClusterEngine::influence_quotient(
    const graph::Partition& partition) const {
  const auto groups = partition.groups();
  graph::Digraph q;
  for (const auto& members : groups) q.add_node(join_names(*sw_, members));
  // Flat sort-based bundling instead of a map of per-pair weight vectors —
  // one allocation for all crossing edges. stable_sort keeps edges of one
  // pair in edge order and pairs emit in ascending (ca, cb), so the Eq. 4
  // complement products and the edge insertion order match the previous
  // map-based build bitwise.
  struct CrossEdge {
    std::uint32_t ca, cb;
    double weight;
  };
  std::vector<CrossEdge> cross;
  cross.reserve(sw_->influence_graph().edge_count());
  for (const graph::Edge& e : sw_->influence_graph().edges()) {
    if (sw_->replicas(e.from, e.to)) continue;  // drop 0-weight replica links
    const std::uint32_t ca = partition.cluster_of[e.from];
    const std::uint32_t cb = partition.cluster_of[e.to];
    if (ca == cb) continue;
    cross.push_back({ca, cb, e.weight});
  }
  std::stable_sort(cross.begin(), cross.end(),
                   [](const CrossEdge& x, const CrossEdge& y) {
                     if (x.ca != y.ca) return x.ca < y.ca;
                     return x.cb < y.cb;
                   });
  for (std::size_t i = 0; i < cross.size();) {
    const std::uint32_t ca = cross[i].ca;
    const std::uint32_t cb = cross[i].cb;
    double none = 1.0;
    for (; i < cross.size() && cross[i].ca == ca && cross[i].cb == cb; ++i) {
      none *= 1.0 - cross[i].weight;
    }
    q.add_edge(ca, cb, std::clamp(1.0 - none, 0.0, 1.0));
  }
  return q;
}

ClusteringResult ClusterEngine::finish(graph::Partition partition,
                                       std::vector<std::string> steps) const {
  ClusteringResult result;
  result.quotient = influence_quotient(partition);
  result.partition = std::move(partition);
  result.steps = std::move(steps);
  return result;
}

ClusteringResult ClusterEngine::h1_greedy() {
  graph::Partition partition =
      graph::Partition::identity(sw_->node_count());
  quotient_cache_.reset(*sw_, partition, options_.incremental_quotient);
  std::vector<std::string> steps;
  greedy_merge_to_target(partition, steps, GreedyStepStyle::kCombine);
  return finish(std::move(partition), std::move(steps));
}

void ClusterEngine::greedy_merge_to_target(graph::Partition& partition,
                                           std::vector<std::string>& steps,
                                           GreedyStepStyle style) {
  if (options_.use_pair_heap) {
    greedy_merge_heap(partition, steps, style);
  } else {
    greedy_merge_scan(partition, steps, style);
  }
}

void ClusterEngine::throw_no_combinable_pair(
    const graph::Partition& partition, GreedyStepStyle style) const {
  if (style == GreedyStepStyle::kCombine) {
    throw Infeasible(
        "H1: no combinable cluster pair remains at " +
        std::to_string(partition.cluster_count) + " clusters (target " +
        std::to_string(options_.target_clusters) + ")");
  }
  throw Infeasible("H2: repair phase cannot re-merge to the target");
}

std::string ClusterEngine::greedy_step_text(GreedyStepStyle style,
                                            const std::string& a_names,
                                            const std::string& b_names,
                                            double mutual) {
  std::ostringstream step;
  if (style == GreedyStepStyle::kCombine) {
    step << "combine " << a_names << " + " << b_names
         << " (mutual influence " << mutual << ")";
  } else {
    step << "repair-merge " << a_names << " + " << b_names;
  }
  return step.str();
}

void ClusterEngine::greedy_merge_scan(graph::Partition& partition,
                                      std::vector<std::string>& steps,
                                      GreedyStepStyle style) {
  const bool memo = options_.use_influence_cache;
  while (partition.cluster_count > options_.target_clusters) {
    const auto groups = partition.groups();
    double best = -1.0;
    std::uint32_t best_a = 0, best_b = 0;
    for (std::uint32_t a = 0; a < partition.cluster_count; ++a) {
      for (std::uint32_t b = a + 1; b < partition.cluster_count; ++b) {
        const double m = quotient_cache_.mutual(groups[a].front(),
                                                groups[b].front(), memo);
        if (m > best && can_combine(partition, a, b)) {
          best = m;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best < 0.0) throw_no_combinable_pair(partition, style);
    if (options_.log_steps) {
      steps.push_back(greedy_step_text(style,
                                       join_names(*sw_, groups[best_a]),
                                       join_names(*sw_, groups[best_b]),
                                       best));
    }
    quotient_cache_.merge(groups[best_a].front(), groups[best_b].front());
    partition.merge(groups[best_a].front(), groups[best_b].front());
  }
}

void ClusterEngine::greedy_merge_heap(graph::Partition& partition,
                                      std::vector<std::string>& steps,
                                      GreedyStepStyle style) {
  // Lazy-deletion max-heap over candidate cluster pairs, keyed by mutual
  // influence. Clusters are identified by their representative (smallest
  // member node index) — stable under merging — plus a version stamp bumped
  // whenever the cluster's membership changes, so superseded entries are
  // recognized and dropped on pop instead of being searched for.
  //
  // Selection equivalence with the scan: cluster indices are ordered by
  // smallest member (Partition::merge keeps the lower index and shifts the
  // rest down), so ordering ties by ascending (rep_a, rep_b) reproduces the
  // scan's first-wins tie break over ascending (a, b); a popped pair that
  // fails can_combine is discarded for good because combinability depends
  // only on the two clusters' members, and any later membership change
  // reinserts the pair with fresh stamps.
  const bool memo = options_.use_influence_cache;
  const bool incremental = options_.incremental_quotient;
  FCM_OBS_SPAN("h1.greedy_merge");
  // Local tallies flushed once at the end: the merge loop is sequential, so
  // one registry call per run costs nothing on the pop path.
  std::uint64_t pops = 0, stale_pops = 0, recomputes = 0, inherits = 0,
                merges = 0, zero_fallbacks = 0;

  struct Candidate {
    double mutual;
    graph::NodeIndex rep_a, rep_b;  // rep_a < rep_b
    std::uint64_t ver_a, ver_b;
  };
  // "Worse" comparator: lower mutual influence, then higher (rep_a, rep_b).
  const auto worse = [](const Candidate& x, const Candidate& y) {
    if (x.mutual != y.mutual) return x.mutual < y.mutual;
    if (x.rep_a != y.rep_a) return x.rep_a > y.rep_a;
    return x.rep_b > y.rep_b;
  };

  std::unordered_map<graph::NodeIndex, std::uint64_t> version;
  std::vector<graph::NodeIndex> reps;
  for (const auto& members : partition.groups()) {
    reps.push_back(members.front());
    version.emplace(members.front(), 0);
  }
  // Last known exact mutual value per live positive pair, keyed
  // (lo << 32 | hi) by representatives (incremental mode only). When a
  // merge leaves a neighbor's edge bundle untouched — the neighbor was
  // adjacent to only one of the two merged clusters, so the fold just
  // re-keys its bundle — the pair's mutual value is bitwise unchanged and
  // is inherited from here instead of re-running the Eq. 4 product.
  std::unordered_map<std::uint64_t, double> pair_value;
  const auto pair_key = [](graph::NodeIndex lo, graph::NodeIndex hi) {
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };

  std::vector<Candidate> heap;
  if (incremental) {
    // Seed only pairs sharing at least one crossing influence edge with
    // positive combined influence — every other pair is exactly 0.0 and is
    // reached through the zero-mutual fallback below once the heap drains.
    // At scale this is O(edges) candidates instead of O(clusters²).
    for (const graph::NodeIndex a : reps) {
      for (const graph::NodeIndex b : quotient_cache_.neighbors(a)) {
        if (b <= a) continue;
        const double m = quotient_cache_.mutual(a, b, memo);
        if (m > 0.0) {
          heap.push_back({m, a, b, 0, 0});
          pair_value.emplace(pair_key(a, b), m);
        }
      }
    }
  } else {
    heap.reserve(reps.size() * (reps.size() - 1) / 2);
    for (std::size_t a = 0; a < reps.size(); ++a) {
      for (std::size_t b = a + 1; b < reps.size(); ++b) {
        heap.push_back({quotient_cache_.mutual(reps[a], reps[b], memo),
                        reps[a], reps[b], 0, 0});
      }
    }
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  // Pre-merge neighbor snapshots, reused across merges.
  std::vector<graph::NodeIndex> na_scratch, nb_scratch;

  const auto apply_merge = [&](graph::NodeIndex rep_a, graph::NodeIndex rep_b,
                               double mutual_value) {
    if (options_.log_steps) {
      const auto groups = partition.groups();
      steps.push_back(greedy_step_text(
          style, join_names(*sw_, groups[partition.cluster_of[rep_a]]),
          join_names(*sw_, groups[partition.cluster_of[rep_b]]),
          mutual_value));
    }
    if (incremental) {
      // Snapshot both adjacency lists before the cache merge folds them.
      na_scratch = quotient_cache_.neighbors(rep_a);
      nb_scratch = quotient_cache_.neighbors(rep_b);
    }
    quotient_cache_.merge(rep_a, rep_b);
    partition.merge(rep_a, rep_b);
    const graph::NodeIndex merged = std::min(rep_a, rep_b);
    version.erase(std::max(rep_a, rep_b));
    const std::uint64_t merged_version = ++version[merged];
    // Only pairs touching the merged cluster need fresh influence values.
    if (incremental) {
      // And of those, only its bundle-neighbors can be positive; the
      // neighbor index (already folded by the cache merge above) lists
      // exactly those, ascending. A neighbor of only one merged side keeps
      // a bitwise-identical bundle, so its mutual value is inherited; only
      // neighbors of both sides get a fresh Eq. 4 evaluation.
      pair_value.erase(pair_key(merged, std::max(rep_a, rep_b)));
      for (const graph::NodeIndex c : quotient_cache_.neighbors(merged)) {
        const bool in_a = std::binary_search(na_scratch.begin(),
                                             na_scratch.end(), c);
        const bool in_b = std::binary_search(nb_scratch.begin(),
                                             nb_scratch.end(), c);
        const std::uint64_t key_a =
            pair_key(std::min(rep_a, c), std::max(rep_a, c));
        const std::uint64_t key_b =
            pair_key(std::min(rep_b, c), std::max(rep_b, c));
        const graph::NodeIndex lo = std::min(c, merged);
        const graph::NodeIndex hi = std::max(c, merged);
        double m = 0.0;
        if (in_a && in_b) {
          m = quotient_cache_.mutual(lo, hi, memo);
          ++recomputes;
        } else {
          const auto it = pair_value.find(in_a ? key_a : key_b);
          m = it == pair_value.end() ? 0.0 : it->second;
          ++inherits;
        }
        pair_value.erase(key_a);
        pair_value.erase(key_b);
        if (m <= 0.0) continue;
        pair_value.emplace(pair_key(lo, hi), m);
        heap.push_back({m, lo, hi,
                        lo == merged ? merged_version
                                     : version.find(lo)->second,
                        hi == merged ? merged_version
                                     : version.find(hi)->second});
        std::push_heap(heap.begin(), heap.end(), worse);
      }
    } else {
      for (const auto& [rep, ver] : version) {
        if (rep == merged) continue;
        const graph::NodeIndex lo = std::min(rep, merged);
        const graph::NodeIndex hi = std::max(rep, merged);
        heap.push_back({quotient_cache_.mutual(lo, hi, memo), lo, hi,
                        lo == merged ? merged_version : ver,
                        hi == merged ? merged_version : ver});
        std::push_heap(heap.begin(), heap.end(), worse);
        ++recomputes;
      }
    }
    ++merges;
  };

  // Every remaining combinable pair has mutual influence exactly 0.0 once
  // the heap drains (positive pairs are heap-resident until popped, and a
  // popped pair that failed can_combine stays uncombinable until one of
  // its clusters changes, which re-inserts it). The scan reference would
  // pick the first combinable pair in ascending cluster-index order —
  // cluster indices are ordered by representative, so scanning sorted live
  // representatives reproduces that choice.
  const auto zero_mutual_fallback = [&]() {
    std::vector<graph::NodeIndex> live;
    live.reserve(version.size());
    for (const auto& [rep, ver] : version) live.push_back(rep);
    std::sort(live.begin(), live.end());
    for (std::size_t i = 0; i < live.size(); ++i) {
      for (std::size_t j = i + 1; j < live.size(); ++j) {
        if (!can_combine(partition, partition.cluster_of[live[i]],
                         partition.cluster_of[live[j]])) {
          continue;
        }
        apply_merge(live[i], live[j], 0.0);
        ++zero_fallbacks;
        return true;
      }
    }
    return false;
  };

  while (partition.cluster_count > options_.target_clusters) {
    bool merged_one = false;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      const Candidate cand = heap.back();
      heap.pop_back();
      ++pops;
      const auto va = version.find(cand.rep_a);
      const auto vb = version.find(cand.rep_b);
      if (va == version.end() || vb == version.end() ||
          va->second != cand.ver_a || vb->second != cand.ver_b) {
        ++stale_pops;
        continue;  // stale: a membership change superseded this entry
      }
      const std::uint32_t cluster_a = partition.cluster_of[cand.rep_a];
      const std::uint32_t cluster_b = partition.cluster_of[cand.rep_b];
      if (!can_combine(partition, cluster_a, cluster_b)) continue;
      apply_merge(cand.rep_a, cand.rep_b, cand.mutual);
      merged_one = true;
      break;
    }
    if (!merged_one && incremental) merged_one = zero_mutual_fallback();
    if (!merged_one) throw_no_combinable_pair(partition, style);
  }
  FCM_OBS_COUNT("h1.heap.pops", pops);
  FCM_OBS_COUNT("h1.heap.stale_pops", stale_pops);
  FCM_OBS_COUNT("h1.heap.recomputes", recomputes);
  FCM_OBS_COUNT("h1.heap.inherits", inherits);
  FCM_OBS_COUNT("h1.heap.zero_fallbacks", zero_fallbacks);
  FCM_OBS_COUNT("h1.merges", merges);
}

ClusteringResult ClusterEngine::h1_rounds() {
  graph::Partition partition =
      graph::Partition::identity(sw_->node_count());
  quotient_cache_.reset(*sw_, partition, options_.incremental_quotient);
  const bool memo = options_.use_influence_cache;
  std::vector<std::string> steps;
  int round = 0;
  while (partition.cluster_count > options_.target_clusters) {
    ++round;
    const auto groups = partition.groups();
    // Rank all pairs by mutual influence.
    struct Pair {
      double m;
      std::uint32_t a, b;
    };
    std::vector<Pair> pairs;
    for (std::uint32_t a = 0; a < partition.cluster_count; ++a) {
      for (std::uint32_t b = a + 1; b < partition.cluster_count; ++b) {
        pairs.push_back({quotient_cache_.mutual(groups[a].front(),
                                                groups[b].front(), memo),
                         a, b});
      }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
      if (x.m != y.m) return x.m > y.m;
      if (x.a != y.a) return x.a < y.a;
      return x.b < y.b;
    });
    // Greedily select disjoint combinable pairs for this round.
    std::vector<bool> taken(partition.cluster_count, false);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> selected;
    const std::size_t max_merges =
        partition.cluster_count - options_.target_clusters;
    for (const Pair& p : pairs) {
      if (selected.size() >= max_merges) break;
      if (taken[p.a] || taken[p.b]) continue;
      if (!can_combine(partition, p.a, p.b)) continue;
      taken[p.a] = taken[p.b] = true;
      selected.emplace_back(p.a, p.b);
      std::ostringstream step;
      step << "round " << round << ": pair " << join_names(*sw_, groups[p.a])
           << " + " << join_names(*sw_, groups[p.b]) << " (mutual influence "
           << p.m << ")";
      steps.push_back(step.str());
    }
    if (selected.empty()) {
      throw Infeasible("H1-rounds: no combinable pair in round " +
                       std::to_string(round));
    }
    // Selected pairs are disjoint, so their representatives stay current
    // while the merges apply one by one.
    for (const auto& [a, b] : selected) {
      quotient_cache_.merge(groups[a].front(), groups[b].front());
      partition.merge(groups[a].front(), groups[b].front());
    }
  }
  return finish(std::move(partition), std::move(steps));
}

std::vector<std::vector<graph::NodeIndex>>
ClusterEngine::partition_for_hierarchy(std::size_t parts_wanted) const {
  // Stoer–Wagner is O(V³) — fine for parts this small, far too slow for
  // thousands of nodes, where the BFS-order halving takes over.
  constexpr std::size_t kMinCutLimit = 192;
  const std::size_t n = sw_->node_count();
  const graph::Digraph& g = sw_->influence_graph();

  std::vector<std::vector<graph::NodeIndex>> parts;
  {
    std::vector<graph::NodeIndex> all(n);
    for (std::size_t v = 0; v < n; ++v) {
      all[v] = static_cast<graph::NodeIndex>(v);
    }
    parts.push_back(std::move(all));
  }

  std::vector<char> in_part(n, 0);
  std::vector<char> visited(n, 0);

  // Splits `part` at the midpoint of a BFS order over the positive-weight
  // influence edges (replica links carry weight 0 and are ignored), so each
  // half keeps influence locality. Deterministic: BFS seeds are the part's
  // ascending unvisited nodes and neighbors enqueue in ascending index.
  const auto bfs_halves = [&](const std::vector<graph::NodeIndex>& part,
                              std::vector<graph::NodeIndex>& first,
                              std::vector<graph::NodeIndex>& second) {
    for (const graph::NodeIndex v : part) {
      in_part[v] = 1;
      visited[v] = 0;
    }
    std::vector<graph::NodeIndex> order;
    order.reserve(part.size());
    std::vector<graph::NodeIndex> nbrs;
    std::size_t head = 0;
    for (const graph::NodeIndex seed : part) {
      if (visited[seed]) continue;
      visited[seed] = 1;
      order.push_back(seed);
      while (head < order.size()) {
        const graph::NodeIndex u = order[head++];
        nbrs.clear();
        for (const std::uint32_t e : g.out_edges(u)) {
          const graph::Edge& edge = g.edges()[e];
          if (edge.weight > 0.0 && in_part[edge.to]) nbrs.push_back(edge.to);
        }
        for (const std::uint32_t e : g.in_edges(u)) {
          const graph::Edge& edge = g.edges()[e];
          if (edge.weight > 0.0 && in_part[edge.from]) {
            nbrs.push_back(edge.from);
          }
        }
        std::sort(nbrs.begin(), nbrs.end());
        for (const graph::NodeIndex v : nbrs) {
          if (!visited[v]) {
            visited[v] = 1;
            order.push_back(v);
          }
        }
      }
    }
    const std::size_t half = (part.size() + 1) / 2;
    first.assign(order.begin(),
                 order.begin() + static_cast<std::ptrdiff_t>(half));
    second.assign(order.begin() + static_cast<std::ptrdiff_t>(half),
                  order.end());
    std::sort(first.begin(), first.end());
    std::sort(second.begin(), second.end());
    for (const graph::NodeIndex v : part) in_part[v] = 0;
  };

  while (parts.size() < parts_wanted) {
    std::size_t largest = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].size() < 2) continue;
      if (largest == parts.size() ||
          parts[i].size() > parts[largest].size()) {
        largest = i;
      }
    }
    if (largest == parts.size()) break;  // all parts singleton
    const std::vector<graph::NodeIndex> part = std::move(parts[largest]);
    std::vector<graph::NodeIndex> first, second;
    if (part.size() <= kMinCutLimit) {
      const graph::CutResult cut = graph::global_min_cut_subset(g, part);
      for (const graph::NodeIndex v : part) {
        (cut.in_first_side[v] ? first : second).push_back(v);
      }
      FCM_REQUIRE(!first.empty() && !second.empty(),
                  "min-cut produced a degenerate split");
    } else {
      bfs_halves(part, first, second);
    }
    parts[largest] = std::move(first);
    parts.push_back(std::move(second));
  }
  return parts;
}

ClusteringResult ClusterEngine::h1_hierarchical() {
  const std::size_t n = sw_->node_count();
  FCM_REQUIRE(options_.target_clusters <= n,
              "more clusters requested than SW nodes");
  constexpr std::size_t kNodesPerPart = 96;
  const std::size_t parts_wanted =
      options_.hierarchy_parts > 0
          ? options_.hierarchy_parts
          : std::clamp<std::size_t>(n / kNodesPerPart, std::size_t{1},
                                    options_.target_clusters);
  if (parts_wanted <= 1) return h1_greedy();
  FCM_OBS_SPAN("h1.hierarchical");

  const std::vector<std::vector<graph::NodeIndex>> parts =
      partition_for_hierarchy(parts_wanted);
  FCM_OBS_COUNT("h1.hierarchical.parts", parts.size());

  // Local cluster targets: a proportional share of the global target by
  // part size, floored by the part's replica need (replicas of one process
  // inside a part require that many distinct local clusters) and topped up
  // in largest-remainder order until the local targets sum to at least the
  // global target — the final phase then only ever merges.
  std::vector<std::size_t> target(parts.size());
  std::vector<std::size_t> remainder(parts.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::map<FcmId, std::size_t> per_origin;
    std::size_t need = 1;
    for (const graph::NodeIndex v : parts[i]) {
      need = std::max(need, ++per_origin[sw_->node(v).origin]);
    }
    const std::size_t share = options_.target_clusters * parts[i].size();
    target[i] = std::min(parts[i].size(), std::max(need, share / n));
    remainder[i] = share % n;
    total += target[i];
  }
  while (total < options_.target_clusters) {
    std::size_t pick = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (target[i] >= parts[i].size()) continue;
      if (pick == parts.size() || remainder[i] > remainder[pick]) pick = i;
    }
    FCM_REQUIRE(pick < parts.size(),
                "hierarchical: cannot distribute local cluster targets");
    ++target[pick];
    ++total;
    remainder[pick] = 0;
  }

  // Per-part H1 runs — independent of each other and of the lane running
  // them, so the composed result is bitwise identical for any thread
  // count. Errors are captured per slot and rethrown in part order.
  struct PartOutcome {
    graph::Partition partition;
    std::vector<std::string> steps;
    std::size_t achieved_target = 0;
    std::exception_ptr error;
  };
  std::vector<PartOutcome> outcomes(parts.size());
  const std::uint32_t threads =
      exec::resolve_threads(options_.threads, parts.size());
  exec::parallel_for_blocks(
      parts.size(), threads, [&](std::uint64_t b, std::uint32_t /*lane*/) {
        PartOutcome& out = outcomes[b];
        try {
          const SwGraph sub = sw_->subset(parts[b]);
          ClusteringOptions local = options_;
          local.threads = 1;
          local.hierarchy_parts = 1;
          // An infeasible local target is relaxed upward; at target ==
          // part size H1 performs no merges, so the loop always lands.
          for (std::size_t t = target[b];; ++t) {
            local.target_clusters = t;
            ClusterEngine local_engine(sub, local);
            try {
              ClusteringResult local_result = local_engine.h1_greedy();
              out.partition = std::move(local_result.partition);
              out.steps = std::move(local_result.steps);
              out.achieved_target = t;
              break;
            } catch (const Infeasible&) {
              if (t >= parts[b].size()) throw;
            }
          }
        } catch (...) {
          out.error = std::current_exception();
        }
      });
  for (PartOutcome& out : outcomes) {
    if (out.error) std::rethrow_exception(out.error);
  }

  // Compose the global partition and step log in fixed part order, then
  // H1-merge across parts down to the global target.
  graph::Partition partition = graph::Partition::identity(n);
  std::vector<std::string> steps;
  if (options_.log_steps) {
    std::ostringstream head;
    head << "hierarchical: " << parts.size() << " parts over " << n
         << " nodes (target " << options_.target_clusters << ")";
    steps.push_back(head.str());
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const auto groups = outcomes[i].partition.groups();
    for (const auto& members : groups) {
      for (std::size_t k = 1; k < members.size(); ++k) {
        partition.merge(parts[i][members[0]], parts[i][members[k]]);
      }
    }
    if (options_.log_steps) {
      std::ostringstream summary;
      summary << "part " << (i + 1) << ": " << parts[i].size()
              << " nodes -> " << groups.size() << " clusters (local target "
              << outcomes[i].achieved_target << ")";
      steps.push_back(summary.str());
      for (const std::string& s : outcomes[i].steps) {
        steps.push_back("part " + std::to_string(i + 1) + ": " + s);
      }
    }
  }
  quotient_cache_.reset(*sw_, partition, options_.incremental_quotient);
  greedy_merge_to_target(partition, steps, GreedyStepStyle::kCombine);
  return finish(std::move(partition), std::move(steps));
}

ClusteringResult ClusterEngine::h2_mincut() {
  std::vector<graph::NodeIndex> all(sw_->node_count());
  for (std::size_t v = 0; v < sw_->node_count(); ++v) {
    all[v] = static_cast<graph::NodeIndex>(v);
  }
  return h2_driver({std::move(all)}, {});
}

ClusteringResult ClusterEngine::h2_st_cut(
    std::optional<graph::NodeIndex> source,
    std::optional<graph::NodeIndex> target) {
  FCM_REQUIRE(sw_->node_count() >= 2, "s-t cut needs at least two nodes");
  // Default endpoints: the two most important SW nodes (distinct).
  if (!source.has_value() || !target.has_value()) {
    graph::NodeIndex best = 0, second = 1;
    for (graph::NodeIndex v = 0; v < sw_->node_count(); ++v) {
      if (sw_->node(v).importance > sw_->node(best).importance) best = v;
    }
    second = best == 0 ? 1 : 0;
    for (graph::NodeIndex v = 0; v < sw_->node_count(); ++v) {
      if (v != best &&
          sw_->node(v).importance > sw_->node(second).importance) {
        second = v;
      }
    }
    if (!source.has_value()) source = best;
    if (!target.has_value()) target = second;
  }
  FCM_REQUIRE(*source != *target, "source and target must differ");
  FCM_REQUIRE(*source < sw_->node_count() && *target < sw_->node_count(),
              "s-t endpoints out of range");

  const graph::StCutResult cut =
      graph::st_min_cut(sw_->influence_graph(), *source, *target);
  std::vector<graph::NodeIndex> first, second_side;
  for (graph::NodeIndex v = 0; v < sw_->node_count(); ++v) {
    (cut.on_source_side[v] ? first : second_side).push_back(v);
  }
  std::vector<std::string> steps;
  std::ostringstream step;
  step << "s-t cut separating " << sw_->node(*source).name << " from "
       << sw_->node(*target).name << " (cut weight " << cut.flow << ")";
  steps.push_back(step.str());
  return h2_driver({std::move(first), std::move(second_side)},
                   std::move(steps));
}

ClusteringResult ClusterEngine::h2_driver(
    std::vector<std::vector<graph::NodeIndex>> parts,
    std::vector<std::string> steps) {

  auto part_valid = [&](const std::vector<graph::NodeIndex>& part) {
    for (std::size_t i = 0; i < part.size(); ++i) {
      for (std::size_t j = i + 1; j < part.size(); ++j) {
        if (sw_->replicas(part[i], part[j])) return false;
      }
    }
    if (options_.resource_check && !resources_hostable(part)) return false;
    if (!options_.enforce_schedulability) return true;
    return members_schedulable(part);
  };

  auto split_part = [&](std::size_t index) {
    const std::vector<graph::NodeIndex> part = parts[index];
    const graph::CutResult cut =
        graph::global_min_cut_subset(sw_->influence_graph(), part);
    std::vector<graph::NodeIndex> first, second;
    for (const graph::NodeIndex v : part) {
      (cut.in_first_side[v] ? first : second).push_back(v);
    }
    // A degenerate cut (everything on one side) cannot happen with
    // Stoer–Wagner, but guard for safety.
    FCM_REQUIRE(!first.empty() && !second.empty(),
                "min-cut produced a degenerate split");
    std::ostringstream step;
    step << "cut {" << join_names(*sw_, part) << "} -> {"
         << join_names(*sw_, first) << "} | {" << join_names(*sw_, second)
         << "} (cut weight " << cut.weight << ")";
    steps.push_back(step.str());
    parts[index] = std::move(first);
    parts.push_back(std::move(second));
  };

  // Phase 1: bisect the largest part until the target count.
  while (parts.size() < options_.target_clusters) {
    std::size_t largest = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].size() < 2) continue;
      if (largest == parts.size() ||
          parts[i].size() > parts[largest].size()) {
        largest = i;
      }
    }
    FCM_REQUIRE(largest < parts.size(),
                "H2: cannot reach the target count (all parts singleton)");
    split_part(largest);
  }

  // Phase 2: repair — split any part violating constraints.
  for (int guard = 0; guard < 1000; ++guard) {
    std::size_t violating = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].size() >= 2 && !part_valid(parts[i])) {
        violating = i;
        break;
      }
    }
    if (violating == parts.size()) break;
    split_part(violating);
  }

  // Build the partition from parts, then re-merge down to target with H1
  // steps if the repair overshot.
  graph::Partition partition =
      graph::Partition::identity(sw_->node_count());
  for (const auto& part : parts) {
    for (std::size_t k = 1; k < part.size(); ++k) {
      partition.merge(part[0], part[k]);
    }
  }
  quotient_cache_.reset(*sw_, partition, options_.incremental_quotient);
  greedy_merge_to_target(partition, steps, GreedyStepStyle::kRepairMerge);
  return finish(std::move(partition), std::move(steps));
}

ClusteringResult ClusterEngine::h3_importance(double importance_threshold,
                                              double influence_threshold) {
  const std::size_t n = sw_->node_count();
  FCM_REQUIRE(options_.target_clusters <= n,
              "more clusters requested than SW nodes");
  // Seeds: the target_clusters most important nodes.
  std::vector<graph::NodeIndex> order(n);
  for (std::size_t v = 0; v < n; ++v) {
    order[v] = static_cast<graph::NodeIndex>(v);
  }
  std::sort(order.begin(), order.end(),
            [&](graph::NodeIndex a, graph::NodeIndex b) {
              if (sw_->node(a).importance != sw_->node(b).importance) {
                return sw_->node(a).importance > sw_->node(b).importance;
              }
              return a < b;
            });
  std::vector<bool> is_seed(n, false);
  std::vector<std::string> steps;
  for (std::size_t k = 0; k < options_.target_clusters; ++k) {
    is_seed[order[k]] = true;
    steps.push_back("seed " + sw_->node(order[k]).name + " (importance " +
                    std::to_string(sw_->node(order[k]).importance) + ")");
  }

  graph::Partition partition = graph::Partition::identity(n);
  quotient_cache_.reset(*sw_, partition, options_.incremental_quotient);
  const bool memo = options_.use_influence_cache;
  // Attach non-seeds (most important first) to their best seed cluster.
  for (std::size_t k = options_.target_clusters; k < n; ++k) {
    const graph::NodeIndex v = order[k];
    const auto groups = partition.groups();
    const std::uint32_t v_cluster = partition.cluster_of[v];
    double best = -1.0;
    std::uint32_t best_cluster = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (!is_seed[s]) continue;
      const std::uint32_t c = partition.cluster_of[s];
      if (c == v_cluster) continue;
      const double m = quotient_cache_.mutual(groups[v_cluster].front(),
                                              groups[c].front(), memo);
      const bool admitted =
          sw_->node(v).importance < importance_threshold ||
          m > influence_threshold;
      if (admitted && m > best && can_combine(partition, v_cluster, c)) {
        best = m;
        best_cluster = c;
      }
    }
    if (best < 0.0) {
      throw Infeasible("H3: node " + sw_->node(v).name +
                       " fits no sphere of influence");
    }
    steps.push_back("attach " + sw_->node(v).name + " -> {" +
                    join_names(*sw_, groups[best_cluster]) +
                    "} (mutual influence " + std::to_string(best) + ")");
    quotient_cache_.merge(groups[v_cluster].front(),
                          groups[best_cluster].front());
    partition.merge(v, groups[best_cluster].front());
  }
  return finish(std::move(partition), std::move(steps));
}

ClusteringResult ClusterEngine::criticality_pairing() {
  graph::Partition partition =
      graph::Partition::identity(sw_->node_count());
  std::vector<std::string> steps;

  auto summary_criticality = [&](std::uint32_t cluster) {
    core::Criticality crit = 0;
    for (std::size_t v = 0; v < partition.cluster_of.size(); ++v) {
      if (partition.cluster_of[v] == cluster) {
        crit = std::max(crit, sw_->node(static_cast<graph::NodeIndex>(v))
                                  .attributes.criticality);
      }
    }
    return crit;
  };

  int round = 0;
  while (partition.cluster_count > options_.target_clusters) {
    ++round;
    const auto groups = partition.groups();
    // Clusters in descending summary criticality (stable on index).
    std::vector<std::uint32_t> list(partition.cluster_count);
    for (std::uint32_t c = 0; c < partition.cluster_count; ++c) list[c] = c;
    std::sort(list.begin(), list.end(), [&](std::uint32_t a, std::uint32_t b) {
      const auto ca = summary_criticality(a);
      const auto cb = summary_criticality(b);
      if (ca != cb) return ca > cb;
      return a < b;
    });

    std::vector<bool> paired(list.size(), false);
    // Pairs as positions into `list` (hi position, lo position).
    std::vector<std::pair<std::size_t, std::size_t>> pairs;

    std::size_t hi = 0;
    while (true) {
      while (hi < list.size() && paired[hi]) ++hi;
      // Find the last unpaired position beyond hi.
      std::size_t lo = list.size();
      for (std::size_t k = list.size(); k-- > hi + 1;) {
        if (!paired[k]) {
          lo = k;
          break;
        }
      }
      if (hi >= list.size() || lo == list.size()) break;

      // Try lo, then the entries preceding lo on the criticality list
      // ("combine ph with the process preceding pl").
      std::size_t chosen = list.size();
      for (std::size_t k = lo; k > hi; --k) {
        if (paired[k]) continue;
        if (can_combine(partition, list[hi], list[k])) {
          chosen = k;
          break;
        }
      }
      if (chosen == list.size()) {
        // hi pairs with nothing this round; it stays as-is.
        paired[hi] = true;  // consumed, unpaired
        continue;
      }
      paired[hi] = paired[chosen] = true;
      pairs.emplace_back(hi, chosen);
      steps.push_back("round " + std::to_string(round) + ": pair " +
                      join_names(*sw_, groups[list[hi]]) + " + " +
                      join_names(*sw_, groups[list[chosen]]));
    }

    // Narrated replicate resolution: if exactly two clusters remain
    // unpaired and incompatible, dissolve the last formed pair and re-pair
    // crosswise.
    std::vector<std::size_t> leftover;
    for (std::size_t k = 0; k < list.size(); ++k) {
      bool in_pair = false;
      for (const auto& [a, b] : pairs) {
        if (k == a || k == b) in_pair = true;
      }
      if (!in_pair) leftover.push_back(k);
    }
    if (leftover.size() == 2 && !pairs.empty() &&
        !can_combine(partition, list[leftover[0]], list[leftover[1]])) {
      const auto [ph, pl] = pairs.back();
      const std::size_t a = leftover[0], b = leftover[1];
      auto try_resolution = [&](std::size_t x, std::size_t y) {
        // (ph with x) and (y with pl)
        if (can_combine(partition, list[ph], list[x]) &&
            can_combine(partition, list[y], list[pl])) {
          pairs.pop_back();
          pairs.emplace_back(ph, x);
          pairs.emplace_back(y, pl);
          steps.push_back(
              "round " + std::to_string(round) + ": conflict between " +
              join_names(*sw_, groups[list[a]]) + " and " +
              join_names(*sw_, groups[list[b]]) +
              " resolved by dissolving pair (" +
              join_names(*sw_, groups[list[ph]]) + "," +
              join_names(*sw_, groups[list[pl]]) + ")");
          return true;
        }
        return false;
      };
      if (!try_resolution(b, a)) (void)try_resolution(a, b);
    }

    if (pairs.empty()) {
      throw Infeasible(
          "criticality pairing: no combinable pair in round " +
          std::to_string(round));
    }

    // Merge pairs (in formation order) until the target count is reached.
    std::size_t merges_allowed =
        partition.cluster_count - options_.target_clusters;
    for (const auto& [a, b] : pairs) {
      if (merges_allowed == 0) break;
      partition.merge(groups[list[a]].front(), groups[list[b]].front());
      --merges_allowed;
    }
  }
  return finish(std::move(partition), std::move(steps));
}

ClusteringResult ClusterEngine::timing_ordered(OrderKey key,
                                               std::size_t max_per_cluster) {
  const std::size_t n = sw_->node_count();
  const std::size_t cap =
      max_per_cluster > 0
          ? max_per_cluster
          : (n + options_.target_clusters - 1) / options_.target_clusters;

  std::vector<graph::NodeIndex> order(n);
  for (std::size_t v = 0; v < n; ++v) {
    order[v] = static_cast<graph::NodeIndex>(v);
  }
  std::sort(order.begin(), order.end(),
            [&](graph::NodeIndex a, graph::NodeIndex b) {
              const SwNode& na = sw_->node(a);
              const SwNode& nb = sw_->node(b);
              switch (key) {
                case OrderKey::kCriticality:
                  if (na.attributes.criticality != nb.attributes.criticality)
                    return na.attributes.criticality >
                           nb.attributes.criticality;
                  break;
                case OrderKey::kEst: {
                  const auto ea = na.attributes.timing
                                      ? na.attributes.timing->est
                                      : Instant::distant_future();
                  const auto eb = nb.attributes.timing
                                      ? nb.attributes.timing->est
                                      : Instant::distant_future();
                  if (ea != eb) return ea < eb;
                  break;
                }
                case OrderKey::kUrgency: {
                  const double ua = core::timing_urgency(na.attributes);
                  const double ub = core::timing_urgency(nb.attributes);
                  if (ua != ub) return ua > ub;
                  break;
                }
              }
              return a < b;
            });

  std::vector<std::vector<graph::NodeIndex>> bins;
  std::vector<std::string> steps;
  auto fits = [&](const std::vector<graph::NodeIndex>& bin,
                  graph::NodeIndex v) {
    if (bin.size() >= cap) return false;
    for (const graph::NodeIndex m : bin) {
      if (sw_->replicas(m, v)) return false;
    }
    std::vector<graph::NodeIndex> combined = bin;
    combined.push_back(v);
    if (options_.resource_check && !resources_hostable(combined)) {
      return false;
    }
    if (!options_.enforce_schedulability) return true;
    return members_schedulable(combined);
  };

  for (const graph::NodeIndex v : order) {
    bool placed = false;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (fits(bins[b], v)) {
        bins[b].push_back(v);
        steps.push_back("place " + sw_->node(v).name + " -> bin " +
                        std::to_string(b + 1));
        placed = true;
        break;
      }
    }
    if (!placed) {
      if (bins.size() >= options_.target_clusters) {
        throw Infeasible("timing-ordered packing: " + sw_->node(v).name +
                         " fits no bin and the bin budget is exhausted");
      }
      bins.push_back({v});
      steps.push_back("open bin " + std::to_string(bins.size()) + " with " +
                      sw_->node(v).name);
    }
  }

  graph::Partition partition = graph::Partition::identity(n);
  for (const auto& bin : bins) {
    for (std::size_t k = 1; k < bin.size(); ++k) {
      partition.merge(bin[0], bin[k]);
    }
  }
  return finish(std::move(partition), std::move(steps));
}

}  // namespace fcm::mapping
