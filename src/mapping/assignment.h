// Cluster-to-HW assignment: Approaches A and B (§5.4).
//
// After clustering, "the next step is to determine the mapping satisfying
// the constraints of the SW node with the HW resources". Two satisficing
// heuristics:
//   Approach A ("importance of tasks"): assign the most important SW node
//       first, onto a HW node where all its resource requirements hold;
//   Approach B ("importance of attributes"): proceed lexicographically over
//       attributes in decreasing importance — criticality first, then the
//       next attribute, and so on.
// Both prefer dilation-minimizing placements when communication matters
// ("further heuristics can be used to map SW nodes with high communication
// costs onto the same or neighboring HW nodes", §6).
#pragma once

#include <string>
#include <vector>

#include "mapping/clustering.h"
#include "mapping/hw.h"

namespace fcm::mapping {

/// A cluster -> HW node assignment (injective).
struct Assignment {
  /// hw_of[c] is the HW node hosting cluster c.
  std::vector<HwNodeId> hw_of;
  /// Per-assignment explanation lines.
  std::vector<std::string> steps;

  [[nodiscard]] HwNodeId host(std::uint32_t cluster) const;
};

/// The lexicographic attribute priority used by Approach B.
enum class AttributeKey : std::uint8_t {
  kCriticality,
  kReplication,
  kTimingUrgency,
  kThroughput,
  kSecurity,
};

const char* to_string(AttributeKey key) noexcept;

/// Approach A: clusters in decreasing importance (max member importance),
/// each placed on the resource-feasible HW node that minimizes added
/// dilation (influence x hop distance to already-placed clusters).
/// Throws Infeasible when a cluster's resource requirements fit no node.
Assignment assign_by_importance(const SwGraph& sw,
                                const ClusteringResult& clustering,
                                const HwGraph& hw);

/// Approach B: clusters ordered lexicographically by the given attribute
/// priority list (most important attribute first), then placed like A.
Assignment assign_lexicographic(
    const SwGraph& sw, const ClusteringResult& clustering, const HwGraph& hw,
    const std::vector<AttributeKey>& priority = {
        AttributeKey::kCriticality, AttributeKey::kReplication,
        AttributeKey::kTimingUrgency, AttributeKey::kThroughput});

}  // namespace fcm::mapping
