#include "mapping/hw.h"

#include <queue>

#include "common/error.h"
#include "graph/algorithms.h"

namespace fcm::mapping {

HwGraph HwGraph::complete(int n, double link_bandwidth) {
  FCM_REQUIRE(n >= 1, "a platform needs at least one node");
  HwGraph hw;
  for (int i = 0; i < n; ++i) {
    hw.add_node("hw" + std::to_string(i + 1));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      hw.add_link(HwNodeId(static_cast<std::uint32_t>(i)),
                  HwNodeId(static_cast<std::uint32_t>(j)), link_bandwidth);
    }
  }
  return hw;
}

HwNodeId HwGraph::add_node(std::string name, double memory,
                           std::set<std::string> resources) {
  HwNode node;
  node.id = HwNodeId(static_cast<std::uint32_t>(nodes_.size()));
  node.name = name;
  node.memory = memory;
  node.resources = std::move(resources);
  graph_.add_node(std::move(name));
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void HwGraph::add_link(HwNodeId a, HwNodeId b, double bandwidth) {
  FCM_REQUIRE(bandwidth > 0.0, "link bandwidth must be positive");
  graph_.add_edge(a.value(), b.value(), bandwidth);
  graph_.add_edge(b.value(), a.value(), bandwidth);
}

const HwNode& HwGraph::node(HwNodeId id) const {
  FCM_REQUIRE(id.valid() && id.value() < nodes_.size(),
              "unknown HW node id");
  return nodes_[id.value()];
}

bool HwGraph::linked(HwNodeId a, HwNodeId b) const {
  return graph_.has_edge(a.value(), b.value());
}

int HwGraph::hop_distance(HwNodeId a, HwNodeId b) const {
  FCM_REQUIRE(a.value() < nodes_.size() && b.value() < nodes_.size(),
              "unknown HW node id");
  if (a == b) return 0;
  std::vector<int> dist(nodes_.size(), -1);
  std::queue<graph::NodeIndex> queue;
  queue.push(a.value());
  dist[a.value()] = 0;
  while (!queue.empty()) {
    const graph::NodeIndex v = queue.front();
    queue.pop();
    for (const graph::NodeIndex w : graph_.successors(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        if (w == b.value()) return dist[w];
        queue.push(w);
      }
    }
  }
  throw Infeasible("HW nodes " + node(a).name + " and " + node(b).name +
                   " are not connected");
}

bool HwGraph::strongly_connected() const {
  return graph::is_strongly_connected(graph_);
}

}  // namespace fcm::mapping
