#include "mapping/swgraph.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace fcm::mapping {

std::string replica_suffix(int index) {
  FCM_REQUIRE(index >= 0, "replica index must be non-negative");
  std::string suffix;
  int n = index;
  do {
    suffix.insert(suffix.begin(), static_cast<char>('a' + n % 26));
    n = n / 26 - 1;
  } while (n >= 0);
  return suffix;
}

SwGraph SwGraph::build(const core::FcmHierarchy& hierarchy,
                       const core::InfluenceModel& influence,
                       const std::vector<FcmId>& processes,
                       const core::ImportanceWeights& weights) {
  SwGraph sw;
  // First pass: create replica nodes per process.
  std::vector<std::vector<graph::NodeIndex>> replicas_of(processes.size());
  for (std::size_t p = 0; p < processes.size(); ++p) {
    const core::Fcm& fcm = hierarchy.get(processes[p]);
    FCM_REQUIRE(fcm.level == core::Level::kProcess,
                "SW allocation graph is built over process-level FCMs");
    const int degree = fcm.attributes.replication;
    FCM_REQUIRE(degree >= 1, "replication degree must be at least 1");
    for (int r = 0; r < degree; ++r) {
      SwNode node;
      node.id = SwNodeId(static_cast<std::uint32_t>(sw.nodes_.size()));
      node.name = degree == 1 ? fcm.name : fcm.name + replica_suffix(r);
      node.origin = fcm.id;
      node.replica_index = r;
      node.attributes = fcm.attributes;
      node.importance = core::importance(fcm.attributes, weights);
      replicas_of[p].push_back(sw.graph_.add_node(node.name));
      sw.nodes_.push_back(std::move(node));
    }
  }
  // Influence edges, replicated across every (source replica, target
  // replica) pair.
  for (std::size_t from = 0; from < processes.size(); ++from) {
    for (std::size_t to = 0; to < processes.size(); ++to) {
      if (from == to) continue;
      const Probability p =
          influence.influence(processes[from], processes[to]);
      if (p == Probability::zero()) continue;
      for (const graph::NodeIndex a : replicas_of[from]) {
        for (const graph::NodeIndex b : replicas_of[to]) {
          sw.graph_.add_edge(a, b, p.value());
        }
      }
    }
  }
  // Weight-0 links between replica pairs.
  for (const auto& group : replicas_of) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        sw.graph_.add_edge(group[i], group[j], 0.0, "replica");
      }
    }
  }
  return sw;
}

SwGraph SwGraph::subset(const std::vector<graph::NodeIndex>& keep) const {
  SwGraph sub;
  std::vector<std::uint32_t> new_index(nodes_.size(), UINT32_MAX);
  // Surviving replicas are *promoted*: replica indices renumber densely per
  // process and the replication attribute clamps to the replicas actually
  // kept, so a process reduced from TMR to one survivor no longer demands
  // three distinct clusters from downstream constraint checks.
  std::map<FcmId, int> kept_of_origin;
  for (const graph::NodeIndex v : keep) {
    FCM_REQUIRE(v < nodes_.size(), "subset keeps an unknown SW node");
    ++kept_of_origin[nodes_[v].origin];
  }
  std::map<FcmId, int> next_replica;
  for (const graph::NodeIndex v : keep) {
    FCM_REQUIRE(new_index[v] == UINT32_MAX, "subset keeps a node twice");
    FCM_REQUIRE(sub.nodes_.empty() || keep[sub.nodes_.size() - 1] < v,
                "subset node list must be ascending");
    SwNode node = nodes_[v];
    new_index[v] = static_cast<std::uint32_t>(sub.nodes_.size());
    node.id = SwNodeId(new_index[v]);
    node.replica_index = next_replica[node.origin]++;
    node.attributes.replication =
        std::min(node.attributes.replication,
                 static_cast<core::ReplicationDegree>(
                     kept_of_origin.at(node.origin)));
    sub.graph_.add_node(node.name);
    sub.nodes_.push_back(std::move(node));
  }
  for (const graph::Edge& edge : graph_.edges()) {
    const std::uint32_t from = new_index[edge.from];
    const std::uint32_t to = new_index[edge.to];
    if (from == UINT32_MAX || to == UINT32_MAX) continue;
    sub.graph_.add_edge(from, to, edge.weight, edge.label);
  }
  return sub;
}

const SwNode& SwGraph::node(SwNodeId id) const {
  FCM_REQUIRE(id.valid() && id.value() < nodes_.size(), "unknown SW node");
  return nodes_[id.value()];
}

const SwNode& SwGraph::node(graph::NodeIndex index) const {
  FCM_REQUIRE(index < nodes_.size(), "SW node index out of range");
  return nodes_[index];
}

bool SwGraph::replicas(graph::NodeIndex a, graph::NodeIndex b) const {
  return a != b && node(a).origin == node(b).origin;
}

sched::Job SwGraph::job_of(graph::NodeIndex index) const {
  const SwNode& n = node(index);
  FCM_REQUIRE(n.attributes.timing.has_value(),
              "SW node " + n.name + " has no timing constraints");
  return n.attributes.timing->to_job(JobId(index), n.name);
}

bool SwGraph::has_timing(graph::NodeIndex index) const {
  return node(index).attributes.timing.has_value();
}

}  // namespace fcm::mapping
