#include "mapping/planner.h"

#include <exception>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "exec/executor.h"
#include "obs/obs.h"

namespace fcm::mapping {

const char* to_string(Heuristic heuristic) noexcept {
  switch (heuristic) {
    case Heuristic::kH1Greedy:
      return "H1-greedy";
    case Heuristic::kH1Rounds:
      return "H1-rounds";
    case Heuristic::kH2MinCut:
      return "H2-mincut";
    case Heuristic::kH2StCut:
      return "H2-st-cut";
    case Heuristic::kH3Importance:
      return "H3-importance";
    case Heuristic::kCriticalityPairing:
      return "criticality-pairing";
    case Heuristic::kTimingOrdered:
      return "timing-ordered";
    case Heuristic::kH1Hierarchical:
      return "H1-hierarchical";
  }
  return "?";
}

const char* to_string(Approach approach) noexcept {
  switch (approach) {
    case Approach::kAImportance:
      return "A-importance";
    case Approach::kBLexicographic:
      return "B-lexicographic";
  }
  return "?";
}

std::string Plan::report(const SwGraph& sw, const HwGraph& hw) const {
  std::ostringstream out;
  out << "plan: " << to_string(heuristic) << " + " << to_string(approach)
      << '\n';
  const auto names = clustering.cluster_names(sw);
  for (std::uint32_t c = 0; c < names.size(); ++c) {
    out << "  " << hw.node(assignment.hw_of[c]).name << " <- {";
    for (std::size_t i = 0; i < names[c].size(); ++i) {
      if (i > 0) out << ',';
      out << names[c][i];
    }
    out << "}\n";
  }
  out << quality.report();
  return out.str();
}

IntegrationPlanner::IntegrationPlanner(const core::FcmHierarchy& hierarchy,
                                       const core::InfluenceModel& influence,
                                       std::vector<FcmId> processes,
                                       const HwGraph& hw, PlanOptions options)
    : hw_(&hw),
      options_(options),
      sw_(SwGraph::build(hierarchy, influence, processes)) {}

Plan IntegrationPlanner::plan(Heuristic heuristic, Approach approach) {
  return plan_with(heuristic, approach, &separation_cache_);
}

Plan IntegrationPlanner::plan_with(Heuristic heuristic, Approach approach,
                                   core::SeparationCache* cache) const {
  ClusteringOptions copts;
  copts.target_clusters = hw_->node_count();
  copts.policy = options_.policy;
  copts.threads = options_.cluster_threads;
  copts.incremental_quotient = options_.incremental_quotient;
  copts.hierarchy_parts = options_.hierarchy_parts;
  copts.resource_check = [hw = hw_](const std::set<std::string>& required) {
    for (const HwNode& node : hw->nodes()) {
      if (std::includes(node.resources.begin(), node.resources.end(),
                        required.begin(), required.end())) {
        return true;
      }
    }
    return false;
  };
  ClusterEngine engine(sw_, copts);

  Plan result;
  result.heuristic = heuristic;
  result.approach = approach;
  switch (heuristic) {
    case Heuristic::kH1Greedy:
      result.clustering = engine.h1_greedy();
      break;
    case Heuristic::kH1Rounds:
      result.clustering = engine.h1_rounds();
      break;
    case Heuristic::kH2MinCut:
      result.clustering = engine.h2_mincut();
      break;
    case Heuristic::kH2StCut:
      result.clustering = engine.h2_st_cut();
      break;
    case Heuristic::kH3Importance:
      result.clustering = engine.h3_importance();
      break;
    case Heuristic::kCriticalityPairing:
      result.clustering = engine.criticality_pairing();
      break;
    case Heuristic::kTimingOrdered:
      result.clustering = engine.timing_ordered();
      break;
    case Heuristic::kH1Hierarchical:
      result.clustering = engine.h1_hierarchical();
      break;
  }
  result.assignment =
      approach == Approach::kAImportance
          ? assign_by_importance(sw_, result.clustering, *hw_)
          : assign_lexicographic(sw_, result.clustering, *hw_);
  QualityOptions qopts = options_.quality;
  if (qopts.separation_cache == nullptr) {
    qopts.separation_cache = cache;
  }
  result.quality = evaluate(sw_, result.clustering, result.assignment, *hw_,
                            qopts);
  return result;
}

Plan IntegrationPlanner::best_plan(Approach approach) {
  static constexpr Heuristic kAll[] = {
      Heuristic::kH1Greedy,           Heuristic::kH1Rounds,
      Heuristic::kH2MinCut,           Heuristic::kH2StCut,
      Heuristic::kH3Importance,       Heuristic::kCriticalityPairing,
      Heuristic::kTimingOrdered,
  };
  constexpr std::size_t kCount = std::size(kAll);

  // Each candidate slot is written by exactly one worker; selection reads
  // them sequentially after the join, so the sweep is deterministic.
  struct Candidate {
    std::optional<Plan> plan;
    std::string failure;  // FcmError message, logged in heuristic order
    std::exception_ptr fatal;
  };
  Candidate candidates[kCount];

  const std::uint32_t threads =
      exec::resolve_threads(options_.sweep_threads, kCount);
  FCM_OBS_SPAN("planner.best_plan");
  FCM_OBS_COUNT("planner.sweeps", 1);
  FCM_OBS_GAUGE("planner.sweep_threads", static_cast<double>(threads));

  auto run_candidate = [&](std::size_t index, core::SeparationCache* cache) {
    Candidate& slot = candidates[index];
    // One span per heuristic candidate, keyed by its sweep index so the
    // merged trace reads the same whichever worker ran it.
    FCM_OBS_SPAN("planner.candidate", index);
    FCM_OBS_COUNT("planner.candidates", 1);
    try {
      slot.plan = plan_with(kAll[index], approach, cache);
    } catch (const FcmError& error) {
      slot.failure = error.what();
      FCM_OBS_COUNT("planner.candidate_failures", 1);
    } catch (...) {
      slot.fatal = std::current_exception();
    }
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < kCount; ++i) {
      run_candidate(i, &separation_cache_);
    }
  } else {
    // One separation cache per executor lane: candidates running on the
    // same lane share it. Which candidate lands on which lane depends on
    // the steal schedule, so the hit/miss totals merged below vary run to
    // run even at a fixed thread count — they are diagnostic-only and
    // must stay out of determinism comparisons (the plan itself is
    // schedule-invariant).
    std::vector<core::SeparationCache> lane_caches(threads);
    exec::parallel_for_blocks(
        kCount, threads, [&](std::uint64_t i, std::uint32_t lane) {
          run_candidate(static_cast<std::size_t>(i), &lane_caches[lane]);
        });
    for (const core::SeparationCache& cache : lane_caches) {
      const core::CacheStats stats = cache.stats();
      sweep_stats_.hits += stats.hits;
      sweep_stats_.misses += stats.misses;
      sweep_stats_.invalidations += stats.invalidations;
      sweep_stats_.evictions += stats.evictions;
    }
  }

  bool found = false;
  Plan best;
  for (std::size_t i = 0; i < kCount; ++i) {
    Candidate& candidate = candidates[i];
    if (candidate.fatal) std::rethrow_exception(candidate.fatal);
    if (!candidate.failure.empty()) {
      FCM_INFO() << to_string(kAll[i]) << " failed: " << candidate.failure;
      continue;
    }
    if (!candidate.plan || !candidate.plan->quality.constraints_satisfied()) {
      continue;
    }
    if (!found || candidate.plan->quality.score() > best.quality.score()) {
      best = std::move(*candidate.plan);
      found = true;
    }
  }
  if (!found) {
    throw Infeasible("no clustering heuristic produced a feasible plan");
  }
  return best;
}

}  // namespace fcm::mapping
