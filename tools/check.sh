#!/usr/bin/env bash
# Sanitizer gate: builds the tree once per sanitizer (FCM_SANITIZE=address,
# then undefined) into its own build directory and runs the tier1 ctest
# label under each. Usage:
#   tools/check.sh [address undefined ...]
# With no arguments, runs address and undefined. Exits nonzero on the first
# failing build or test run. Build dirs are kept (build-asan/, build-ubsan/,
# build-tsan/) so incremental re-runs are cheap.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

jobs="$(nproc 2>/dev/null || echo 2)"

for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *) echo "unknown sanitizer '$sanitizer' (want address|undefined|thread)" >&2
       exit 2 ;;
  esac
  echo "=== FCM_SANITIZE=$sanitizer -> $dir ==="
  cmake -B "$dir" -S . -DFCM_SANITIZE="$sanitizer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" -L tier1 --output-on-failure -j "$jobs"
done

echo "=== all sanitizer runs passed: ${sanitizers[*]} ==="
