#!/usr/bin/env python3
"""Compare fcm::obs metrics dumps for the determinism gates.

The registry's deterministic instruments (work counters, work-shaped
histograms, model-derived gauges) must be byte-identical across worker
counts. Scheduling telemetry — instrument names containing ".sched.", e.g.
the executor's steal counter and pool-size gauge — legitimately varies run
to run and is stripped before comparison.

Inputs are either a raw metrics JSON document (the metrics_json() shape:
{"counters":{...},"gauges":{...},"histograms":{...}}) or any text file
containing a "metrics: {...}" line, which is what `fcm_tool --metrics`
prints.

Usage:
    compare_metrics.py [--counters-only] REFERENCE OTHER [OTHER...]

--counters-only drops gauges and histograms entirely: gauges like
mc.threads record the resolved worker count, which is exactly the variable
a thread-invariance sweep changes on purpose.

Exits 0 when every OTHER matches REFERENCE after filtering, 1 with a diff
otherwise.
"""

import argparse
import json
import sys

METRICS_PREFIX = "metrics: "
SCHED_MARKER = ".sched."


def load(path):
    """Parses a metrics dump, accepting raw JSON or a 'metrics: ...' line."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for line in text.splitlines():
        if line.startswith(METRICS_PREFIX):
            text = line[len(METRICS_PREFIX):]
            break
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not a metrics dump: {error}")
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object")
    return data


def filtered(data, counters_only):
    """Drops .sched. instruments (and, optionally, non-counter sections)."""
    sections = ("counters",) if counters_only else (
        "counters", "gauges", "histograms")
    return {
        section: {
            name: value
            for name, value in data.get(section, {}).items()
            if SCHED_MARKER not in name
        }
        for section in sections
    }


def describe_diff(reference, other, ref_path, other_path):
    lines = []
    for section in sorted(set(reference) | set(other)):
        ref_entries = reference.get(section, {})
        other_entries = other.get(section, {})
        for name in sorted(set(ref_entries) | set(other_entries)):
            a = ref_entries.get(name)
            b = other_entries.get(name)
            if a != b:
                lines.append(
                    f"  {section}/{name}: {ref_path}={a!r} {other_path}={b!r}")
    return lines


def main(argv):
    parser = argparse.ArgumentParser(
        description="byte-compare fcm::obs metrics dumps, ignoring "
                    "scheduling telemetry (.sched.)")
    parser.add_argument("--counters-only", action="store_true",
                        help="compare counters only (ignore gauges and "
                             "histograms)")
    parser.add_argument("reference", help="reference dump")
    parser.add_argument("others", nargs="+", help="dumps to compare")
    args = parser.parse_args(argv)

    reference = filtered(load(args.reference), args.counters_only)
    if not any(reference.values()):
        print(f"error: {args.reference} has no comparable instruments",
              file=sys.stderr)
        return 1

    status = 0
    for other_path in args.others:
        other = filtered(load(other_path), args.counters_only)
        if other == reference:
            continue
        status = 1
        print(f"metrics mismatch: {args.reference} vs {other_path}",
              file=sys.stderr)
        for line in describe_diff(reference, other, args.reference,
                                  other_path):
            print(line, file=sys.stderr)
    if status == 0:
        mode = "counters" if args.counters_only else "all instruments"
        print(f"metrics identical across {1 + len(args.others)} dumps "
              f"({mode}, .sched. ignored)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
