// fcm_loadgen — deterministic load generator for the `fcm serve` daemon.
//
//   fcm_loadgen --port P [--host H] [--connections N] [--requests M]
//               [--mix "mapping:1,influence:1,depend:1,replan:1"]
//               [--depend-trials T] [--seed S] [--timeout-ms MS] [--json]
//
// Opens N concurrent connections and sends M requests on each. Every
// connection draws its request schedule from its own mt19937 seeded with
// --seed + connection index, so a given (seed, N, M, mix) always produces
// the same byte streams — reruns are comparable and failures reproducible.
//
// Besides load, this is a correctness harness: every query the daemon
// answers is a pure function of its payload, so the generator remembers the
// first response per distinct (opcode, payload) pair and byte-compares every
// later response against it, across connections and cache states. Any
// mismatch, non-OK status, or socket error makes the run fail (exit 1).
//
// Latencies are recorded per request into the fcm::obs histogram
// `loadgen.sched.request_latency_s` (decade buckets) and into a local
// sample vector for exact p50/p99. The summary prints both plus requests/s;
// --json emits the same numbers as a JSON object on stdout.
//
// Chaos mode (--chaos-seed S, DESIGN.md §15): each connection drives its
// schedule through a serve::ChaosConnection with a deterministic fault
// stream seeded S + connection index — torn writes, truncated frames, RSTs,
// kill-after-send, pipelined floods, already-expired deadlines. Outcomes
// are partitioned exactly: ok / rejected (kOverloaded, kShuttingDown) /
// expired (kDeadlineExceeded) / injected drops (faults we caused) / hard
// errors, and the summary asserts the client-side ledger balances. Retries
// (--retries) are reported separately from errors. The exit code is
// nonzero only for true failures — byte mismatches, unexpected error
// statuses, hard socket errors — never for shed or expired load.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cliopt.h"
#include "common/error.h"
#include "common/table.h"
#include "common/time.h"
#include "obs/obs.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/protocol.h"

using namespace fcm;
namespace protocol = fcm::serve::protocol;

namespace {

int usage() {
  std::cout <<
      "usage: fcm_loadgen --port P [options]\n"
      "  --host H             server host (default 127.0.0.1)\n"
      "  --port P             server port (required)\n"
      "  --connections N      concurrent connections (default 4)\n"
      "  --requests M         requests per connection (default 32)\n"
      "  --mix SPEC           query mix as op:weight pairs, e.g.\n"
      "                       mapping:2,influence:1,depend:1,replan:1,ping:1\n"
      "                       or adversary:1,rare-event:1\n"
      "                       (default mapping:1,influence:1,depend:1,\n"
      "                       replan:1)\n"
      "  --depend-trials T    Monte Carlo trials per depend query\n"
      "                       (default 512; keep small, it is the slow op)\n"
      "  --seed S             schedule seed (default 2026); same seed =>\n"
      "                       same request byte streams\n"
      "  --timeout-ms MS      per-socket-operation timeout (default 30000)\n"
      "  --retries R          retry budget per request beyond the first\n"
      "                       attempt (default 0); retries only connection\n"
      "                       failures, kOverloaded, and kShuttingDown\n"
      "  --retry-backoff-ms MS  initial retry backoff (default 10)\n"
      "  --chaos-seed S       enable chaos mode: inject a deterministic\n"
      "                       fault schedule seeded S + connection index\n"
      "  --json               print the summary as JSON instead of a table\n";
  return 2;
}

struct MixEntry {
  protocol::Opcode opcode;
  std::uint32_t weight;
};

// Parses "mapping:2,depend:1" into weighted entries. Weights must be
// positive integers; ops must be real opcodes.
std::vector<MixEntry> parse_mix(const std::string& spec) {
  std::vector<MixEntry> mix;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    const std::string name = item.substr(0, colon);
    protocol::Opcode opcode;
    if (!protocol::parse_opcode(name, opcode)) {
      throw cli::CliError("unknown op '" + name + "' in --mix");
    }
    std::uint32_t weight = 1;
    if (colon != std::string::npos) {
      const std::string digits = item.substr(colon + 1);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos ||
          digits.size() > 6) {
        throw cli::CliError("bad weight '" + digits + "' in --mix");
      }
      weight = static_cast<std::uint32_t>(std::stoul(digits));
      if (weight == 0) throw cli::CliError("--mix weights must be positive");
    }
    mix.push_back({opcode, weight});
  }
  if (mix.empty()) throw cli::CliError("--mix selects no queries");
  return mix;
}

struct Request {
  protocol::Opcode opcode;
  std::string payload;
};

// The deterministic per-connection schedule. Parameters vary within each
// opcode (heuristics, approaches, failed-node sets) so the daemon's caches
// are exercised on more than one key, but every choice comes from the
// seeded generator — no wall-clock, no global state.
std::vector<Request> build_schedule(std::uint64_t seed, std::uint32_t count,
                                    const std::vector<MixEntry>& mix,
                                    int depend_trials) {
  static const char* kHeuristics[] = {"best", "h1",   "h1r",
                                      "h2",   "crit", "timing"};
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  std::uint32_t total_weight = 0;
  for (const MixEntry& entry : mix) total_weight += entry.weight;
  std::vector<Request> schedule;
  schedule.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t pick = rng() % total_weight;
    protocol::Opcode opcode = mix.front().opcode;
    for (const MixEntry& entry : mix) {
      if (pick < entry.weight) {
        opcode = entry.opcode;
        break;
      }
      pick -= entry.weight;
    }
    std::string payload;
    switch (opcode) {
      case protocol::Opcode::kMapping:
        payload = std::string("heuristic=") + kHeuristics[rng() % 6] +
                  " approach=" + (rng() % 2 == 0 ? "a" : "b");
        break;
      case protocol::Opcode::kDepend:
        payload = "trials=" + std::to_string(depend_trials);
        break;
      case protocol::Opcode::kReplan:
        payload = "fail=" + std::to_string(rng() % 6);
        break;
      case protocol::Opcode::kPing:
        payload = "ping-" + std::to_string(rng() % 1000);
        break;
      case protocol::Opcode::kAdversary:
        // Tiny searches: the point here is protocol + memo coverage, not
        // search quality. Two seeds exercise distinct memo keys.
        payload = "trials=32 restarts=2 iterations=4 neighbors=3 seed=" +
                  std::to_string(2026 + rng() % 2);
        break;
      case protocol::Opcode::kRareEvent:
        payload = "trials=512 pilot=128 q=0.0" +
                  std::to_string(1 + rng() % 3);
        break;
      case protocol::Opcode::kInfluence:
      case protocol::Opcode::kMetrics:
        break;
    }
    schedule.push_back({opcode, std::move(payload)});
  }
  return schedule;
}

// First response seen per distinct request, byte-compared against every
// later one. kMetrics and kPing are exempt: metrics snapshots legitimately
// change between calls (ping is included — it must echo exactly).
class ConsistencyLedger {
 public:
  // Returns a mismatch description, or "" when the response is consistent.
  std::string check(const Request& request, const std::string& response) {
    if (request.opcode == protocol::Opcode::kMetrics) return "";
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::string expected = request.opcode == protocol::Opcode::kPing
                                     ? request.payload
                                     : std::string();
    const auto it = expected_
                        .try_emplace(
                            std::make_pair(
                                static_cast<std::uint16_t>(request.opcode),
                                request.payload),
                            request.opcode == protocol::Opcode::kPing
                                ? expected
                                : response)
                        .first;
    if (it->second != response) {
      return "response mismatch for " +
             protocol::opcode_name(request.opcode) + " '" + request.payload +
             "': got " + std::to_string(response.size()) +
             " bytes, expected " + std::to_string(it->second.size());
    }
    return "";
  }

 private:
  std::mutex mutex_;
  std::map<std::pair<std::uint16_t, std::string>, std::string> expected_;
};

// The client-side outcome ledger for one connection. Every outcome lands
// in exactly one bucket; `outcomes == ok + rejected + expired + injected +
// errors.size()` is asserted by the summary.
struct WorkerResult {
  std::vector<double> latencies_us;
  std::uint64_t outcomes = 0;  ///< terminal outcomes observed (>= schedule
                               ///< size in chaos mode: floods multiply)
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;  ///< kOverloaded or kShuttingDown (retryable
                               ///< load shedding, not a failure)
  std::uint64_t expired = 0;   ///< kDeadlineExceeded
  std::uint64_t injected = 0;  ///< drops the chaos schedule caused itself
  std::uint64_t errored = 0;   ///< outcomes that were true failures
  std::uint64_t retried = 0;   ///< retry attempts the client spent
  std::vector<std::string> errors;  ///< true failures: mismatches,
                                    ///< unexpected statuses, socket errors
                                    ///< (may exceed `errored` when a whole
                                    ///< connection fails outside a request)
};

// Classifies one kOk-or-otherwise response into the ledger. Returns true
// when the response was kOk and byte-consistent.
void record_response(const Request& request, protocol::Status status,
                     const std::string& payload, ConsistencyLedger& ledger,
                     WorkerResult& out) {
  ++out.outcomes;
  switch (status) {
    case protocol::Status::kOk: {
      const std::string mismatch = ledger.check(request, payload);
      if (!mismatch.empty()) {
        ++out.errored;
        out.errors.push_back(mismatch);
        return;
      }
      ++out.ok;
      return;
    }
    case protocol::Status::kOverloaded:
    case protocol::Status::kShuttingDown:
      ++out.rejected;
      return;
    case protocol::Status::kDeadlineExceeded:
      ++out.expired;
      return;
    default:
      ++out.errored;
      out.errors.push_back(protocol::opcode_name(request.opcode) +
                           " answered " + protocol::status_name(status) +
                           ": " + payload);
      return;
  }
}

void run_connection(const std::string& host, std::uint16_t port,
                    Duration timeout, const serve::RetryPolicy& policy,
                    const std::vector<Request>& schedule,
                    ConsistencyLedger& ledger, WorkerResult& out) {
  try {
    serve::Client client(host, port, timeout, policy);
    out.latencies_us.reserve(schedule.size());
    for (const Request& request : schedule) {
      const auto start = std::chrono::steady_clock::now();
      const serve::Client::Response response =
          client.request(request.opcode, request.payload);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      FCM_OBS_HIST("loadgen.sched.request_latency_s", elapsed.count());
      out.latencies_us.push_back(elapsed.count() * 1e6);
      record_response(request, response.status, response.payload, ledger,
                      out);
    }
    out.retried = client.retry_stats().retries;
  } catch (const std::exception& error) {
    out.errors.push_back(std::string("connection failed: ") + error.what());
  }
}

void run_connection_chaos(const std::string& host, std::uint16_t port,
                          Duration timeout, const serve::RetryPolicy& policy,
                          std::uint64_t chaos_seed,
                          const std::vector<Request>& schedule,
                          ConsistencyLedger& ledger, WorkerResult& out) {
  try {
    serve::ChaosConnection chaos(host, port, serve::ChaosSchedule(chaos_seed),
                                 timeout, policy);
    for (const Request& request : schedule) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<serve::ChaosReport> reports =
          chaos.step(request.opcode, request.payload);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      for (const serve::ChaosReport& report : reports) {
        switch (report.outcome) {
          case serve::ChaosOutcome::kInjectedDrop:
            ++out.outcomes;
            ++out.injected;
            break;
          case serve::ChaosOutcome::kConnectionError:
            ++out.outcomes;
            ++out.errored;
            out.errors.push_back(
                std::string("connection error under fault '") +
                serve::fault_name(report.fault) + "'");
            break;
          default:
            record_response(request, report.status, report.payload, ledger,
                            out);
            if (report.outcome == serve::ChaosOutcome::kOk) {
              FCM_OBS_HIST("loadgen.sched.request_latency_s",
                           elapsed.count());
              out.latencies_us.push_back(elapsed.count() * 1e6);
            }
            break;
        }
      }
    }
    out.retried = chaos.client().retry_stats().retries;
  } catch (const std::exception& error) {
    out.errors.push_back(std::string("connection failed: ") + error.what());
  }
}

double exact_quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

int run(const cli::Options& args) {
  const int port = args.get_int("port", 0);
  if (port <= 0 || port > 65535) {
    throw cli::CliError("--port is required, in [1, 65535]");
  }
  const std::string host = args.get("host", "127.0.0.1");
  const int connections = args.get_int("connections", 4);
  const int requests = args.get_int("requests", 32);
  if (connections < 1 || requests < 1) {
    throw cli::CliError("--connections and --requests must be positive");
  }
  const int depend_trials = args.get_int("depend-trials", 512);
  if (depend_trials < 1) throw cli::CliError("--depend-trials must be >= 1");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2026));
  const Duration timeout = Duration::millis(args.get_int("timeout-ms", 30'000));
  const std::vector<MixEntry> mix = parse_mix(
      args.get("mix", "mapping:1,influence:1,depend:1,replan:1"));
  const int retries = args.get_int("retries", 0);
  if (retries < 0) throw cli::CliError("--retries must be >= 0");
  const int retry_backoff_ms = args.get_int("retry-backoff-ms", 10);
  if (retry_backoff_ms < 1) {
    throw cli::CliError("--retry-backoff-ms must be >= 1");
  }
  const bool chaos = !args.get("chaos-seed", "").empty();
  const std::uint64_t chaos_seed =
      static_cast<std::uint64_t>(args.get_int("chaos-seed", 0));

  obs::set_enabled(true);
  std::vector<std::vector<Request>> schedules;
  for (int c = 0; c < connections; ++c) {
    schedules.push_back(build_schedule(seed + static_cast<std::uint64_t>(c),
                                       static_cast<std::uint32_t>(requests),
                                       mix, depend_trials));
  }

  ConsistencyLedger ledger;
  std::vector<WorkerResult> results(static_cast<std::size_t>(connections));
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      serve::RetryPolicy policy;
      policy.max_attempts = 1 + static_cast<std::uint32_t>(retries);
      policy.initial_backoff = Duration::millis(retry_backoff_ms);
      policy.jitter_seed = seed + static_cast<std::uint64_t>(c);
      if (chaos) {
        threads.emplace_back(
            run_connection_chaos, host, static_cast<std::uint16_t>(port),
            timeout, policy, chaos_seed + static_cast<std::uint64_t>(c),
            std::cref(schedules[static_cast<std::size_t>(c)]),
            std::ref(ledger), std::ref(results[static_cast<std::size_t>(c)]));
      } else {
        threads.emplace_back(
            run_connection, host, static_cast<std::uint16_t>(port), timeout,
            policy, std::cref(schedules[static_cast<std::size_t>(c)]),
            std::ref(ledger), std::ref(results[static_cast<std::size_t>(c)]));
      }
    }
    for (std::thread& thread : threads) thread.join();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  std::vector<double> latencies;
  std::uint64_t outcomes = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t injected = 0;
  std::uint64_t errored = 0;
  std::uint64_t retried = 0;
  std::vector<std::string> errors;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    outcomes += result.outcomes;
    ok += result.ok;
    rejected += result.rejected;
    expired += result.expired;
    injected += result.injected;
    errored += result.errored;
    retried += result.retried;
    errors.insert(errors.end(), result.errors.begin(), result.errors.end());
  }
  std::sort(latencies.begin(), latencies.end());
  // The client-side ledger: every observed outcome in exactly one bucket.
  const bool balanced =
      outcomes == ok + rejected + expired + injected + errored;

  const std::uint64_t total =
      static_cast<std::uint64_t>(connections) *
      static_cast<std::uint64_t>(requests);
  const double p50 = exact_quantile(latencies, 0.50);
  const double p99 = exact_quantile(latencies, 0.99);
  const double rps = wall.count() > 0.0
                         ? static_cast<double>(latencies.size()) / wall.count()
                         : 0.0;
  // The obs histogram sees the same samples; its decade-bucket estimate is
  // the cross-check that the exported telemetry tracks the exact numbers.
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  const auto hist = snapshot.histograms.find("loadgen.sched.request_latency_s");
  const double hist_p50_us =
      hist == snapshot.histograms.end() ? 0.0 : hist->second.quantile(0.5) * 1e6;
  const double hist_p99_us =
      hist == snapshot.histograms.end() ? 0.0
                                        : hist->second.quantile(0.99) * 1e6;
  // p100 must equal the recorded max exactly (not a bucket upper bound):
  // the CI loadgen smoke asserts obs_hist_p100_us == p100_us.
  const double hist_p100_us =
      hist == snapshot.histograms.end() ? 0.0
                                        : hist->second.quantile(1.0) * 1e6;
  const double p100 = latencies.empty() ? 0.0 : latencies.back();

  for (const std::string& error : errors) {
    std::cerr << "error: " << error << '\n';
  }

  if (args.flag("json")) {
    std::cout << "{\n"
              << "  \"connections\": " << connections << ",\n"
              << "  \"requests_per_connection\": " << requests << ",\n"
              << "  \"requests_total\": " << total << ",\n"
              << "  \"outcomes\": " << outcomes << ",\n"
              << "  \"ok\": " << ok << ",\n"
              << "  \"rejected\": " << rejected << ",\n"
              << "  \"expired\": " << expired << ",\n"
              << "  \"injected_drops\": " << injected << ",\n"
              << "  \"retried\": " << retried << ",\n"
              << "  \"errors\": " << errors.size() << ",\n"
              << "  \"balanced\": " << (balanced ? "true" : "false") << ",\n"
              << "  \"chaos\": " << (chaos ? "true" : "false") << ",\n"
              << "  \"chaos_seed\": " << chaos_seed << ",\n"
              << "  \"seed\": " << seed << ",\n"
              << "  \"elapsed_s\": " << wall.count() << ",\n"
              << "  \"rps\": " << rps << ",\n"
              << "  \"p50_us\": " << p50 << ",\n"
              << "  \"p99_us\": " << p99 << ",\n"
              << "  \"p100_us\": " << p100 << ",\n"
              << "  \"obs_hist_p50_us\": " << hist_p50_us << ",\n"
              << "  \"obs_hist_p99_us\": " << hist_p99_us << ",\n"
              << "  \"obs_hist_p100_us\": " << hist_p100_us << "\n"
              << "}\n";
  } else {
    TextTable table({"metric", "value"});
    table.add_row({"connections x requests", std::to_string(connections) +
                                                 " x " +
                                                 std::to_string(requests)});
    table.add_row({"ok / errors", std::to_string(ok) + " / " +
                                      std::to_string(errors.size())});
    table.add_row({"rejected / expired", std::to_string(rejected) + " / " +
                                             std::to_string(expired)});
    table.add_row({"retried", std::to_string(retried)});
    if (chaos) {
      table.add_row({"chaos seed", std::to_string(chaos_seed)});
      table.add_row({"injected drops", std::to_string(injected)});
      table.add_row({"outcome ledger",
                     balanced ? "balanced" : "UNBALANCED"});
    }
    table.add_row({"elapsed s", fmt(wall.count(), 3)});
    table.add_row({"requests/s", fmt(rps, 1)});
    table.add_row({"p50 us", fmt(p50, 1)});
    table.add_row({"p99 us", fmt(p99, 1)});
    table.add_row({"p100 us", fmt(p100, 1)});
    table.add_row({"obs-hist p50 us", fmt(hist_p50_us, 1)});
    table.add_row({"obs-hist p99 us", fmt(hist_p99_us, 1)});
    table.add_row({"obs-hist p100 us", fmt(hist_p100_us, 1)});
    std::cout << table.render();
  }
  // Shed and expired load is the admission machinery working as designed;
  // only true failures (and an unbalanced ledger) fail the run.
  return errors.empty() && balanced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Options args;
  try {
    args = cli::parse_options(
        argc, argv, 1,
        {{"host"},
         {"port"},
         {"connections"},
         {"requests"},
         {"mix"},
         {"depend-trials"},
         {"seed"},
         {"timeout-ms"},
         {"retries"},
         {"retry-backoff-ms"},
         {"chaos-seed"},
         {"json", /*takes_value=*/false}});
    return run(args);
  } catch (const cli::CliError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return usage();
  } catch (const FcmError& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
