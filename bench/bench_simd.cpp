// Ablation — SIMD backend differential: the three vectorized hot kernels
// (Monte Carlo trial lotteries = PCG uniform fill + threshold compare,
// Eq. 3 power-series dense/CSR row updates, Eq. 3 min-separation folds)
// timed per backend (scalar reference / auto-vectorized / intrinsics) with
// every speedup gated on a bitwise-identity check, plus an end-to-end
// evaluate_mapping pass per backend compared against the scalar report.
// The headline speedups vs kScalarRef are recorded to BENCH_simd.json.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "common/simd.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/montecarlo.h"
#include "mapping/assignment.h"

namespace {

using namespace fcm;
using namespace fcm::dependability;

// Raw PCG LCG state/increment for the kernel benches (inc must be odd).
// Arbitrary but fixed: every backend replays the same stream.
constexpr std::uint64_t kState0 = 0x853c49e6748fea9bULL;
constexpr std::uint64_t kInc = 0xda3e39cb94b95bdbULL;

// Work sizes: one "pass" is roughly one Monte Carlo block / one dense row
// sweep, repeated enough times for a stable wall-clock reading.
constexpr std::size_t kDraws = 1u << 11;     // uniforms per lottery chunk
constexpr int kFillPasses = 1024;
constexpr std::size_t kN = 256;              // dense series block dimension
constexpr std::size_t kBlock = 8;            // p rows folded per out row
constexpr int kSeriesPasses = 4;
constexpr std::size_t kCsrEntries = 1u << 14;  // gapped CSR row entries
constexpr int kCsrPasses = 64;
constexpr std::size_t kRowLen = 4096;        // min-separation fold row length

std::vector<simd::Backend> backends() {
  std::vector<simd::Backend> list{simd::Backend::kScalarRef,
                                  simd::Backend::kAutoVec};
  if (simd::simd_available()) list.push_back(simd::Backend::kSimd);
  return list;
}

simd::Backend best_backend() {
  return simd::simd_available() ? simd::Backend::kSimd
                                : simd::Backend::kAutoVec;
}

// --- Kernel workloads (identical inputs per backend; outputs memcmp'd) ---

// Monte Carlo trial lottery: draw kDraws failure flags per chunk through
// the fused bernoulli kernel — the exact shape of montecarlo.cpp step 1
// (BatchRng::bernoulli off the raw stream state). The chunk stays
// L1-resident like the engine's lottery batches.
void mc_pass(const simd::KernelTable& k, std::vector<std::uint8_t>& failed) {
  std::uint64_t state = kState0;
  for (int pass = 0; pass < kFillPasses; ++pass) {
    k.bernoulli(&state, kInc, 0.1, failed.data(), kDraws);
  }
}

// Dense series row updates in the blocked shape of graph/series.h
// dense_rows: out[i,:] += a_ik * p[k,:] over a kBlock-row slab of p that
// stays cache-resident (exactly how P^m reuses P's rows across out rows).
// out is NOT re-zeroed per pass: accumulation is deterministic and every
// backend runs the same pass count, so timings stay comparable without a
// memset diluting the kernel.
void series_pass(const simd::KernelTable& k, const std::vector<double>& p,
                 std::vector<double>& out) {
  const double* rows[kBlock];
  double coeffs[kBlock];
  for (std::size_t r = 0; r < kBlock; ++r) rows[r] = p.data() + r * kN;
  for (int pass = 0; pass < kSeriesPasses; ++pass) {
    for (std::size_t i = 0; i < kN; ++i) {
      for (std::size_t r = 0; r < kBlock; ++r) {
        coeffs[r] = 0.125 + 1e-3 * static_cast<double>(i + r);
      }
      k.axpy_rows(out.data() + i * kN, rows, coeffs, kBlock, kN);
    }
  }
}

// CSR row updates with gapped columns (the lane-blocked SpMV inner loop).
void csr_pass(const simd::KernelTable& k, const std::vector<std::uint32_t>& cols,
              const std::vector<double>& vals, std::vector<double>& out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (int pass = 0; pass < kCsrPasses; ++pass) {
    k.csr_axpy(out.data(), cols.data(), vals.data(), 0.37, kCsrEntries);
  }
}

// Min-separation fold over clamped complements (core/separation.cpp).
double min_pass(const simd::KernelTable& k, const std::vector<double>& s) {
  double acc = 1.0;
  for (std::size_t row = 0; row + kRowLen <= s.size(); row += kRowLen) {
    acc = std::min(acc, k.min_complement(s.data() + row, kRowLen));
  }
  return acc;
}

struct KernelTimes {
  double mc = 0.0;
  double series = 0.0;
  double csr = 0.0;
  double min_fold = 0.0;
  bool identical = true;  // all outputs bitwise equal to kScalarRef's
};

KernelTimes time_backend(simd::Backend backend, const KernelTimes* reference,
                         std::vector<double>& ref_uniforms,
                         std::vector<std::uint8_t>& ref_failed,
                         std::vector<double>& ref_series,
                         std::vector<double>& ref_csr, double& ref_min) {
  const simd::KernelTable& k = simd::kernels(backend);
  const int repeat = bench::repeat();

  std::vector<double> uniforms(kDraws);
  std::vector<std::uint8_t> failed(kDraws);
  std::vector<double> p(kBlock * kN);
  std::vector<double> out(std::max(kN * kN, 3 * kCsrEntries + 2));
  std::vector<std::uint32_t> cols(kCsrEntries);
  std::vector<double> vals(kCsrEntries);
  std::vector<double> separations(64 * kRowLen);

  // Deterministic inputs, same for every backend. The separation buffer
  // includes NaNs and out-of-range values to keep the clamp on the timed
  // path honest.
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = 0.001 * static_cast<double>(i % 997);
  }
  for (std::size_t e = 0; e < kCsrEntries; ++e) {
    cols[e] = static_cast<std::uint32_t>(3 * e + (e % 2));
    vals[e] = 0.002 * static_cast<double>(e % 499);
  }
  for (std::size_t i = 0; i < separations.size(); ++i) {
    separations[i] = i % 8191 == 0
                         ? std::numeric_limits<double>::quiet_NaN()
                         : 1e-4 * static_cast<double>(i % 9973) - 0.01;
  }

  KernelTimes times;
  times.mc =
      bench::timed_median_seconds(repeat, [&] { mc_pass(k, failed); });
  std::fill(out.begin(), out.end(), 0.0);
  times.series =
      bench::timed_median_seconds(repeat, [&] { series_pass(k, p, out); });
  times.csr =
      bench::timed_median_seconds(repeat, [&] { csr_pass(k, cols, vals, out); });
  double min_value = 1.0;
  times.min_fold = bench::timed_median_seconds(
      repeat, [&] { benchmark::DoNotOptimize(min_value = min_pass(k, separations)); });

  // One controlled pass per kernel for the bitwise comparison (plus an
  // untimed fill_uniforms pass so the uniform stream itself stays under
  // differential test alongside the fused lottery flags).
  mc_pass(k, failed);
  std::uint64_t fill_state = kState0;
  k.fill_uniforms(&fill_state, kInc, uniforms.data(), kDraws);
  std::fill(out.begin(), out.end(), 0.0);
  series_pass(k, p, out);
  const double min_final = min_pass(k, separations);
  std::vector<double> csr_out(3 * kCsrEntries + 2);
  csr_pass(k, cols, vals, csr_out);

  if (reference == nullptr) {
    ref_uniforms = uniforms;
    ref_failed = failed;
    ref_series.assign(out.begin(), out.begin() + kN * kN);
    ref_csr = csr_out;
    ref_min = min_final;
  } else {
    times.identical =
        std::memcmp(uniforms.data(), ref_uniforms.data(),
                    kDraws * sizeof(double)) == 0 &&
        std::memcmp(failed.data(), ref_failed.data(), kDraws) == 0 &&
        std::memcmp(out.data(), ref_series.data(),
                    kN * kN * sizeof(double)) == 0 &&
        std::memcmp(csr_out.data(), ref_csr.data(),
                    csr_out.size() * sizeof(double)) == 0 &&
        std::memcmp(&min_final, &ref_min, sizeof(double)) == 0;
  }
  return times;
}

// --- End-to-end: the full Monte Carlo evaluator per backend ---

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  mapping::SwGraph sw = mapping::SwGraph::build(
      instance.hierarchy, instance.influence, instance.processes);
  mapping::HwGraph hw = mapping::HwGraph::complete(6);
  mapping::ClusteringResult clustering;
  mapping::Assignment assignment;

  Setup() {
    mapping::ClusteringOptions options;
    options.target_clusters = 6;
    mapping::ClusterEngine engine(sw, options);
    clustering = engine.criticality_pairing();
    assignment = mapping::assign_by_importance(sw, clustering, hw);
  }
};

bool reports_identical(const DependabilityReport& a,
                       const DependabilityReport& b) {
  return a.system_survival == b.system_survival &&
         a.critical_survival == b.critical_survival &&
         a.expected_criticality_loss == b.expected_criticality_loss &&
         a.process_survival == b.process_survival;
}

void print_reproduction() {
  bench::banner("SIMD backend differential: kernels, " +
                std::to_string(bench::repeat()) + " repeat(s), median");
  const simd::Backend saved = simd::active_backend();
  const std::vector<simd::Backend> all = backends();
  if (!simd::simd_available()) {
    std::cout << "(intrinsics backend unavailable on this build/CPU — "
                 "kSimd rows degrade to kAutoVec)\n";
  }

  std::vector<double> ref_uniforms;
  std::vector<std::uint8_t> ref_failed;
  std::vector<double> ref_series, ref_csr;
  double ref_min = 0.0;
  std::vector<KernelTimes> times;
  for (std::size_t i = 0; i < all.size(); ++i) {
    times.push_back(time_backend(all[i], i == 0 ? nullptr : &times[0],
                                 ref_uniforms, ref_failed, ref_series,
                                 ref_csr, ref_min));
  }

  const KernelTimes& scalar = times[0];
  const KernelTimes& best = times.back();
  TextTable table({"backend", "mc trials", "series rows", "csr rows",
                   "min fold", "identical"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    table.add_row({simd::backend_name(all[i]), fmt(times[i].mc, 4),
                   fmt(times[i].series, 4), fmt(times[i].csr, 4),
                   fmt(times[i].min_fold, 4),
                   times[i].identical ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "speedups vs scalar reference ("
            << simd::backend_name(all.back())
            << "): mc trials " << fmt(scalar.mc / best.mc, 1)
            << "x, series rows " << fmt(scalar.series / best.series, 1)
            << "x, csr rows " << fmt(scalar.csr / best.csr, 1)
            << "x, min fold " << fmt(scalar.min_fold / best.min_fold, 1)
            << "x\n(seconds are medians; \"identical\" = every kernel output "
               "memcmp-equal to the scalar row)\n";

  bench::banner("end-to-end Monte Carlo evaluator per backend");
  Setup setup;
  MissionModel mission;
  mission.hw_failure = Probability(0.1);
  mission.sw_fault = Probability(0.02);
  mission.propagate = true;
  mission.trials = 200'000;
  mission.threads = 1;

  DependabilityReport scalar_report;
  bool e2e_identical = true;
  double e2e_scalar = 0.0, e2e_best = 0.0;
  TextTable e2e({"backend", "seconds", "identical report"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    simd::set_backend(all[i]);
    DependabilityReport report;
    const double seconds = bench::timed_median_seconds(bench::repeat(), [&] {
      report = evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                                setup.hw, mission, 2024);
    });
    if (i == 0) scalar_report = report;
    const bool identical = reports_identical(scalar_report, report);
    e2e_identical = e2e_identical && identical;
    if (i == 0) e2e_scalar = seconds;
    if (i + 1 == all.size()) e2e_best = seconds;
    e2e.add_row({simd::backend_name(all[i]), fmt(seconds, 4),
                 identical ? "yes" : "NO"});
  }
  simd::set_backend(saved);
  std::cout << e2e.render();
  std::cout << "(end-to-end gains are smaller than kernel gains: propagation "
               "and bookkeeping stay scalar)\n";

  bool kernels_identical = true;
  for (const KernelTimes& t : times) {
    kernels_identical = kernels_identical && t.identical;
  }
  const bool bitwise_identical = kernels_identical && e2e_identical;

  std::ofstream json("BENCH_simd.json");
  json << "{\n"
       << "  \"bench\": \"simd_backends\",\n"
       << "  \"repeat\": " << bench::repeat() << ",\n"
       << "  \"simd_available\": "
       << (simd::simd_available() ? "true" : "false") << ",\n"
       << "  \"best_backend\": \"" << simd::backend_name(best_backend())
       << "\",\n"
       << "  \"seconds_mc_scalar\": " << scalar.mc << ",\n"
       << "  \"seconds_mc_best\": " << best.mc << ",\n"
       << "  \"speedup_mc_trials\": " << scalar.mc / best.mc << ",\n"
       << "  \"seconds_series_scalar\": " << scalar.series << ",\n"
       << "  \"seconds_series_best\": " << best.series << ",\n"
       << "  \"speedup_series_rows\": " << scalar.series / best.series
       << ",\n"
       << "  \"speedup_csr_rows\": " << scalar.csr / best.csr << ",\n"
       << "  \"speedup_min_fold\": " << scalar.min_fold / best.min_fold
       << ",\n"
       << "  \"seconds_e2e_scalar\": " << e2e_scalar << ",\n"
       << "  \"seconds_e2e_best\": " << e2e_best << ",\n"
       << "  \"speedup_e2e\": " << e2e_scalar / e2e_best << ",\n"
       << "  \"bitwise_identical\": "
       << (bitwise_identical ? "true" : "false") << "\n}\n";
  std::cout << "(backend record written to BENCH_simd.json)\n";
}

// --- google-benchmark microbenches, one Arg per backend ---

void BM_FillUniforms(benchmark::State& state) {
  const simd::KernelTable& k =
      simd::kernels(static_cast<simd::Backend>(state.range(0)));
  std::vector<double> uniforms(kDraws);
  for (auto _ : state) {
    std::uint64_t rng_state = kState0;
    k.fill_uniforms(&rng_state, kInc, uniforms.data(), kDraws);
    benchmark::DoNotOptimize(uniforms.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDraws));
}
BENCHMARK(BM_FillUniforms)->Arg(0)->Arg(1)->Arg(2);

void BM_Axpy(benchmark::State& state) {
  const simd::KernelTable& k =
      simd::kernels(static_cast<simd::Backend>(state.range(0)));
  std::vector<double> p(kRowLen), out(kRowLen, 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = 0.001 * static_cast<double>(i % 997);
  }
  for (auto _ : state) {
    k.axpy(out.data(), p.data(), 0.25, kRowLen);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRowLen));
}
BENCHMARK(BM_Axpy)->Arg(0)->Arg(1)->Arg(2);

void BM_MinComplement(benchmark::State& state) {
  const simd::KernelTable& k =
      simd::kernels(static_cast<simd::Backend>(state.range(0)));
  std::vector<double> s(kRowLen);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = 1e-4 * static_cast<double>(i % 9973);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.min_complement(s.data(), kRowLen));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRowLen));
}
BENCHMARK(BM_MinComplement)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
