// Ablation — §4.2.3 on the simulator: "If non-preemptive scheduling is
// used, then a timing fault (e.g., a task in an infinite loop) can cause
// all other tasks also to fail. However, the probability of transmission of
// the timing fault (p_{5,2}) can be minimized by using preemptive
// scheduling." We inject timing faults of growing severity into a shared-
// processor workload and measure the victim's deadline-miss probability
// under both policies.
#include "bench_util.h"
#include "common/table.h"
#include "sim/platform.h"

namespace {

using namespace fcm;
using namespace fcm::sim;

PlatformSpec shared_cpu(SchedPolicy policy) {
  PlatformSpec spec;
  const ProcessorId cpu = spec.add_processor("cpu0", policy);
  TaskSpec hog;  // the fault site
  hog.name = "hog";
  hog.processor = cpu;
  hog.period = Duration::millis(50);
  hog.deadline = Duration::millis(50);
  hog.cost = Duration::millis(10);
  spec.add_task(hog);
  TaskSpec urgent;  // the victim
  urgent.name = "urgent";
  urgent.processor = cpu;
  urgent.period = Duration::millis(10);
  urgent.deadline = Duration::millis(5);
  urgent.cost = Duration::millis(2);
  urgent.offset = Duration::millis(1);
  spec.add_task(urgent);
  return spec;
}

/// Fraction of trials in which the victim missed at least one deadline
/// after a timing fault of the given severity hit the hog.
double transmission_rate(SchedPolicy policy, double cost_factor,
                         int trials) {
  int transmitted = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Platform platform(shared_cpu(policy),
                      static_cast<std::uint64_t>(trial) + 1);
    FaultInjection injection;
    injection.kind = FaultKind::kTiming;
    injection.target = 0;
    injection.activation = static_cast<std::uint32_t>(trial % 4);
    injection.cost_factor = cost_factor;
    platform.inject(injection);
    const SimReport report = platform.run(Duration::millis(200));
    if (report.tasks[1].deadline_misses > 0) ++transmitted;
  }
  return static_cast<double>(transmitted) / trials;
}

void print_reproduction() {
  bench::banner(
      "Timing-fault transmission: preemptive EDF vs non-preemptive FIFO");
  TextTable table({"overrun factor", "NP-FIFO miss rate",
                   "preemptive-EDF miss rate", "fixed-priority-DM miss rate"});
  for (const double factor : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    table.add_row({fmt(factor, 1),
                   fmt(transmission_rate(
                       SchedPolicy::kNonPreemptiveFifo, factor, 40)),
                   fmt(transmission_rate(SchedPolicy::kPreemptiveEdf,
                                         factor, 40)),
                   fmt(transmission_rate(SchedPolicy::kFixedPriorityDm,
                                         factor, 40))});
  }
  std::cout << table.render();
  std::cout << "\nnon-preemptive scheduling transmits every overrun to the "
               "urgent task;\npreemptive EDF contains moderate overruns and "
               "leaks only under EDF\noverload (factor >= 5, where the "
               "hog's deadline out-prioritizes the\nvictim's); static "
               "fixed-priority DM never inverts — the urgent task's\n"
               "priority is immune to the hog's lateness. The paper's "
               "p_{5,2} claim,\nmeasured with its fine print.\n";
}

void BM_TransmissionTrial(benchmark::State& state) {
  const auto policy = static_cast<SchedPolicy>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Platform platform(shared_cpu(policy), seed++);
    FaultInjection injection;
    injection.kind = FaultKind::kTiming;
    injection.target = 0;
    injection.cost_factor = 5.0;
    platform.inject(injection);
    benchmark::DoNotOptimize(platform.run(Duration::millis(200)));
  }
}
BENCHMARK(BM_TransmissionTrial)
    ->Arg(static_cast<int>(SchedPolicy::kPreemptiveEdf))
    ->Arg(static_cast<int>(SchedPolicy::kNonPreemptiveFifo))
    ->Arg(static_cast<int>(SchedPolicy::kFixedPriorityDm));

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
