// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper: it first
// prints the paper-shaped rows/series (the reproduction artifact recorded in
// EXPERIMENTS.md), then runs google-benchmark microbenchmarks of the
// machinery behind that artifact.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "graph/digraph.h"

namespace fcm::bench {

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// High-water-mark resident set size of this process in bytes (0 when the
/// platform offers no getrusage). Monotone over the process lifetime, so
/// per-phase readings only show a phase's contribution when it raised the
/// peak.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Process-wide allocation counters, filled in by the global operator
/// new/delete overrides of FCM_BENCH_DEFINE_ALLOC_HOOKS. Relaxed atomics:
/// the counts are exact (every allocation increments), only cross-thread
/// ordering is unconstrained, which is fine for before/after deltas taken
/// on one thread.
struct AllocCounters {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> bytes{0};
};

/// The registry behind the alloc hooks. Declared here, defined by the
/// FCM_BENCH_DEFINE_ALLOC_HOOKS expansion — a bench that never expands the
/// macro must not call this (it would fail to link, loudly and at build
/// time, rather than silently reporting zeros).
AllocCounters& alloc_counters();

/// Prints a digraph's edges as "from -> to  weight" rows.
inline void print_edges(const graph::Digraph& g) {
  for (const graph::Edge& e : g.edges()) {
    std::cout << "  " << g.name(e.from) << " -> " << g.name(e.to) << "  "
              << e.weight;
    if (!e.label.empty()) std::cout << "  [" << e.label << "]";
    std::cout << '\n';
  }
}

/// The --repeat N count for hand-rolled timing sweeps (default 1). Set by
/// FCM_BENCH_MAIN from the command line before the reproduction runs.
inline int& repeat_slot() {
  static int value = 1;
  return value;
}
inline int repeat() { return repeat_slot(); }

/// Parses and strips `--repeat N` / `--repeat=N` from argv so the flag
/// never reaches benchmark::Initialize (which rejects unknown arguments).
/// Malformed or missing values fall back to 1, matching the lenient
/// FCM_THREADS parsing convention. Returns the repeat count (>= 1).
inline int strip_repeat_flag(int* argc, char** argv) {
  int repeat = 1;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const std::string arg = argv[read];
    std::string value;
    if (arg == "--repeat" && read + 1 < *argc) {
      value = argv[++read];
    } else if (arg.rfind("--repeat=", 0) == 0) {
      value = arg.substr(9);
    } else {
      argv[write++] = argv[read];
      continue;
    }
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end != value.c_str() && *end == '\0' && parsed >= 1) {
      repeat = static_cast<int>(parsed);
    }
  }
  *argc = write;
  argv[write] = nullptr;
  return repeat;
}

/// Runs fn once untimed (warmup), then `repeat` timed passes, and returns
/// the median wall-clock seconds (upper middle for even repeat counts).
/// With --repeat 1 this is one warm timing — stable enough for smokes; CI
/// and recorded BENCH_*.json speedups use --repeat 5.
template <typename Fn>
double timed_median_seconds(int repeat, Fn&& fn) {
  fn();  // warmup: touch caches, fault in pages, spin up worker pools
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(repeat < 1 ? 1 : repeat));
  for (int i = 0; i < repeat || i == 0; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    seconds.push_back(elapsed.count());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

/// Standard main: print the reproduction, then run benchmarks. `--repeat N`
/// is consumed here (see repeat()/timed_median_seconds) so the hand-rolled
/// sweeps can report median-of-N timings; everything else goes to
/// google-benchmark.
#define FCM_BENCH_MAIN(print_reproduction)              \
  int main(int argc, char** argv) {                     \
    ::fcm::bench::repeat_slot() =                       \
        ::fcm::bench::strip_repeat_flag(&argc, argv);   \
    print_reproduction();                               \
    ::benchmark::Initialize(&argc, argv);               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();              \
    ::benchmark::Shutdown();                            \
    return 0;                                           \
  }

/// Defines `alloc_counters()` plus counting global operator new/delete.
/// Expand exactly once, at namespace scope, in the bench's main .cpp.
/// Only the four core overloads are replaced — the standard library
/// forwards the nothrow and array forms to these, so every heap
/// allocation in the process is counted.
/// GCC pairs the replaced operator new (malloc-backed) with the replaced
/// operator delete (free-backed) and warns that free() mismatches new —
/// a false positive here, since both sides of the pair are replaced
/// together.
#define FCM_BENCH_DEFINE_ALLOC_HOOKS()                                     \
  _Pragma("GCC diagnostic push")                                           \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")            \
  namespace fcm::bench {                                                   \
  AllocCounters& alloc_counters() {                                        \
    static AllocCounters counters;                                         \
    return counters;                                                       \
  }                                                                        \
  }                                                                        \
  void* operator new(std::size_t size) {                                   \
    auto& counters = ::fcm::bench::alloc_counters();                       \
    counters.allocations.fetch_add(1, std::memory_order_relaxed);          \
    counters.bytes.fetch_add(size, std::memory_order_relaxed);             \
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;             \
    throw std::bad_alloc();                                                \
  }                                                                        \
  void* operator new(std::size_t size, std::align_val_t align) {           \
    auto& counters = ::fcm::bench::alloc_counters();                       \
    counters.allocations.fetch_add(1, std::memory_order_relaxed);          \
    counters.bytes.fetch_add(size, std::memory_order_relaxed);             \
    void* p = nullptr;                                                     \
    if (posix_memalign(&p, static_cast<std::size_t>(align),                \
                       size == 0 ? 1 : size) == 0) {                       \
      return p;                                                            \
    }                                                                      \
    throw std::bad_alloc();                                                \
  }                                                                        \
  void operator delete(void* ptr) noexcept { std::free(ptr); }             \
  void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); } \
  void operator delete(void* ptr, std::align_val_t) noexcept {             \
    std::free(ptr);                                                        \
  }                                                                        \
  void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { \
    std::free(ptr);                                                        \
  }                                                                        \
  _Pragma("GCC diagnostic pop")

}  // namespace fcm::bench
