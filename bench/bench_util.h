// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper: it first
// prints the paper-shaped rows/series (the reproduction artifact recorded in
// EXPERIMENTS.md), then runs google-benchmark microbenchmarks of the
// machinery behind that artifact.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "graph/digraph.h"

namespace fcm::bench {

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Prints a digraph's edges as "from -> to  weight" rows.
inline void print_edges(const graph::Digraph& g) {
  for (const graph::Edge& e : g.edges()) {
    std::cout << "  " << g.name(e.from) << " -> " << g.name(e.to) << "  "
              << e.weight;
    if (!e.label.empty()) std::cout << "  [" << e.label << "]";
    std::cout << '\n';
  }
}

/// Standard main: print the reproduction, then run benchmarks.
#define FCM_BENCH_MAIN(print_reproduction)              \
  int main(int argc, char** argv) {                     \
    print_reproduction();                               \
    ::benchmark::Initialize(&argc, argv);               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();              \
    ::benchmark::Shutdown();                            \
    return 0;                                           \
  }

}  // namespace fcm::bench
