// Figure 8 — "A refined HW-SW mapping to 4 HW nodes": the §6.2 closing
// technique ("compute an ordered list of SW nodes ... map SW nodes onto a
// HW node starting at the top of the list maintaining their compliance to
// the specified constraints") packs the 12 replicas into four nodes:
// {p1a,p2a,p3a} {p1b,p2b,p3b} {p1c,p4,p5} {p6,p7,p8}.
#include "bench_util.h"
#include "common/error.h"
#include "core/example98.h"
#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/quality.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  SwGraph sw = SwGraph::build(instance.hierarchy, instance.influence,
                              instance.processes);
  HwGraph hw = HwGraph::complete(core::example98::kHwNodesFig8);
};

void print_reproduction() {
  bench::banner("Figure 8: timing-ordered packing onto 4 HW nodes");
  Setup setup;
  ClusteringOptions options;
  options.target_clusters = setup.hw.node_count();
  ClusterEngine engine(setup.sw, options);
  const ClusteringResult result = engine.timing_ordered();

  std::cout << "packing steps:\n";
  for (const std::string& step : result.steps) {
    std::cout << "  " << step << '\n';
  }
  const Assignment assignment =
      assign_by_importance(setup.sw, result, setup.hw);
  std::cout << "\nmapped SW nodes per HW node:\n";
  const auto names = result.cluster_names(setup.sw);
  for (std::uint32_t c = 0; c < names.size(); ++c) {
    std::cout << "  " << setup.hw.node(assignment.hw_of[c]).name << " <- {";
    for (std::size_t i = 0; i < names[c].size(); ++i) {
      if (i > 0) std::cout << ',';
      std::cout << names[c][i];
    }
    std::cout << "}\n";
  }
  std::cout << "\ncondensed influence graph:\n";
  bench::print_edges(result.quotient);
  const MappingQuality quality =
      evaluate(setup.sw, result, assignment, setup.hw);
  std::cout << '\n' << quality.report();
}

void BM_TimingOrderedPacking(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = setup.hw.node_count();
    ClusterEngine engine(setup.sw, options);
    benchmark::DoNotOptimize(engine.timing_ordered());
  }
}
BENCHMARK(BM_TimingOrderedPacking);

void BM_PackingOrderVariants(benchmark::State& state) {
  Setup setup;
  const auto key = static_cast<OrderKey>(state.range(0));
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = setup.hw.node_count();
    ClusterEngine engine(setup.sw, options);
    try {
      benchmark::DoNotOptimize(
          engine.timing_ordered(key, setup.sw.node_count()));
    } catch (const Infeasible&) {
      // Some orders cannot pack this instance; cost still measured.
    }
  }
}
BENCHMARK(BM_PackingOrderVariants)
    ->Arg(static_cast<int>(OrderKey::kCriticality))
    ->Arg(static_cast<int>(OrderKey::kEst))
    ->Arg(static_cast<int>(OrderKey::kUrgency));

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
