// Ablation — the V&V payoff of the hierarchy (§4.1): "each level represents
// a different level of abstraction, which simplifies V&V … by not having to
// consider lower levels". R5 localizes re-certification after a change to
// the modified FCM, its parent, and its sibling interfaces; the naive
// alternative re-certifies everything. This bench quantifies the obligation
// counts as the system scales and as a maintenance history unfolds.
#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/verification.h"

namespace {

using namespace fcm;
using namespace fcm::core;

FcmHierarchy build_system(int processes, int tasks_per_process,
                          int procedures_per_task) {
  FcmHierarchy h;
  for (int p = 1; p <= processes; ++p) {
    const FcmId process = h.create("p" + std::to_string(p), Level::kProcess);
    for (int t = 1; t <= tasks_per_process; ++t) {
      const FcmId task =
          h.create_child(process, h.get(process).name + ".t" +
                                       std::to_string(t));
      for (int f = 1; f <= procedures_per_task; ++f) {
        h.create_child(task, h.get(task).name + ".f" + std::to_string(f));
      }
    }
  }
  return h;
}

/// Size of the initial full-certification campaign (the naive cost of any
/// change when V&V is not localized).
std::size_t full_certification_size(const FcmHierarchy& h) {
  VerificationCampaign campaign(h);
  return campaign.plan_initial_certification();
}

void print_reproduction() {
  bench::banner("R5 localized re-certification vs full re-certification");
  TextTable table({"processes", "FCMs", "full recert", "R5 per change (avg)",
                   "ratio"});
  Rng rng(7);
  for (const int processes : {2, 4, 8, 16, 32}) {
    const FcmHierarchy h = build_system(processes, 4, 4);
    const std::size_t full = full_certification_size(h);

    // Simulate a 50-change maintenance history over random FCMs.
    VerificationCampaign campaign(h);
    const auto all = h.all();
    std::size_t total_obligations = 0;
    for (int change = 0; change < 50; ++change) {
      const FcmId target = all[rng.below(
          static_cast<std::uint32_t>(all.size()))];
      total_obligations += campaign.plan_modification(
          target, "change " + std::to_string(change));
      // Discharge so the next change plans afresh.
      for (const Obligation& o : campaign.obligations()) {
        if (o.status == ObligationStatus::kPending) {
          campaign.record_result(o.id, true);
        }
      }
    }
    const double average = static_cast<double>(total_obligations) / 50.0;
    table.add_row({std::to_string(processes), std::to_string(h.size()),
                   std::to_string(full), fmt(average, 1),
                   fmt(average / static_cast<double>(full), 4)});
  }
  std::cout << table.render();
  std::cout << "\nR5's retest set stays O(siblings) while full "
               "re-certification grows\nwith the system — the paper's "
               "hierarchy payoff, quantified.\n";
}

void BM_PlanModification(benchmark::State& state) {
  const FcmHierarchy h =
      build_system(static_cast<int>(state.range(0)), 4, 4);
  const auto all = h.all();
  VerificationCampaign campaign(h);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        campaign.plan_modification(all[i++ % all.size()], "bench"));
  }
}
BENCHMARK(BM_PlanModification)->Arg(4)->Arg(32);

void BM_InitialCertification(benchmark::State& state) {
  const FcmHierarchy h =
      build_system(static_cast<int>(state.range(0)), 4, 4);
  for (auto _ : state) {
    VerificationCampaign campaign(h);
    benchmark::DoNotOptimize(campaign.plan_initial_certification());
  }
}
BENCHMARK(BM_InitialCertification)->Arg(4)->Arg(32);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
