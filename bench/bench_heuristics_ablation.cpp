// Ablation — clustering heuristics compared on the §6 system: H1 (greedy
// and round-paired), H2 (recursive min-cut), H3 (importance spheres),
// Approach-B criticality pairing, and timing-ordered packing, scored on the
// paper's three "good mapping" criteria plus Monte Carlo criticality loss.
#include <iomanip>

#include "bench_util.h"
#include "common/error.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/montecarlo.h"
#include "mapping/planner.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  HwGraph hw = HwGraph::complete(core::example98::kHwNodes);
  IntegrationPlanner planner{instance.hierarchy, instance.influence,
                             instance.processes, hw};
};

void print_reproduction() {
  bench::banner(
      "Ablation: clustering heuristics on the Section 6 system (6 HW nodes)");
  Setup setup;
  TextTable table({"heuristic", "cross-infl", "max-coloc-C", "crit-pairs",
                   "score", "E[crit loss] @q=0.15"});
  dependability::MissionModel mission;
  mission.hw_failure = Probability(0.15);
  mission.propagate = false;
  mission.trials = 30'000;

  for (const Heuristic h :
       {Heuristic::kH1Greedy, Heuristic::kH1Rounds, Heuristic::kH2MinCut,
        Heuristic::kH2StCut, Heuristic::kH3Importance,
        Heuristic::kCriticalityPairing, Heuristic::kTimingOrdered}) {
    try {
      const Plan plan = setup.planner.plan(h, Approach::kAImportance);
      const auto dep = dependability::evaluate_mapping(
          setup.planner.sw_graph(), plan.clustering, plan.assignment,
          setup.hw, mission, 42);
      table.add_row({to_string(h), fmt(plan.quality.cross_node_influence),
                     fmt(plan.quality.max_colocated_criticality, 0),
                     std::to_string(plan.quality.critical_pairs_colocated),
                     fmt(plan.quality.score()),
                     fmt(dep.expected_criticality_loss)});
    } catch (const FcmError& e) {
      table.add_row({to_string(h), "infeasible", "-", "-", "-", e.what()});
    }
  }
  std::cout << table.render();
  std::cout << "\nexpected shape: H1 minimizes cross-node influence "
               "(containment);\ncriticality pairing minimizes colocated "
               "criticality and Monte Carlo loss.\n";
}

void BM_Heuristic(benchmark::State& state) {
  Setup setup;
  const auto h = static_cast<Heuristic>(state.range(0));
  for (auto _ : state) {
    try {
      benchmark::DoNotOptimize(setup.planner.plan(h, Approach::kAImportance));
    } catch (const FcmError&) {
    }
  }
}
BENCHMARK(BM_Heuristic)
    ->Arg(static_cast<int>(Heuristic::kH1Greedy))
    ->Arg(static_cast<int>(Heuristic::kH1Rounds))
    ->Arg(static_cast<int>(Heuristic::kH2MinCut))
    ->Arg(static_cast<int>(Heuristic::kH2StCut))
    ->Arg(static_cast<int>(Heuristic::kH3Importance))
    ->Arg(static_cast<int>(Heuristic::kCriticalityPairing))
    ->Arg(static_cast<int>(Heuristic::kTimingOrdered));

void BM_BestPlan(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.planner.best_plan());
  }
}
BENCHMARK(BM_BestPlan);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
