// Ablation — survival curves across the failure-rate regime: containment-
// driven H1 vs dispersion-driven criticality pairing on the §6 system.
// The two "good mapping" philosophies of §5.3 trade places as the per-node
// failure probability grows; `crossover_point` locates where.
#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/sensitivity.h"
#include "mapping/assignment.h"

namespace {

using namespace fcm;
using namespace fcm::dependability;

struct Mapped {
  mapping::ClusteringResult clustering;
  mapping::Assignment assignment;
};

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  mapping::SwGraph sw = mapping::SwGraph::build(
      instance.hierarchy, instance.influence, instance.processes);
  mapping::HwGraph hw = mapping::HwGraph::complete(6);

  Mapped make(bool criticality) {
    mapping::ClusteringOptions options;
    options.target_clusters = 6;
    mapping::ClusterEngine engine(sw, options);
    Mapped m;
    m.clustering =
        criticality ? engine.criticality_pairing() : engine.h1_greedy();
    m.assignment = mapping::assign_by_importance(sw, m.clustering, hw);
    return m;
  }
};

void print_reproduction() {
  bench::banner(
      "Survival curves: H1 (containment) vs criticality pairing (dispersion)");
  Setup setup;
  const Mapped h1 = setup.make(false);
  const Mapped crit = setup.make(true);

  SweepOptions options;
  options.hw_failure_points = {0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4};
  options.mission.trials = 30'000;
  options.mission.sw_fault = Probability(0.01);
  options.mission.propagate = true;

  const auto curve_h1 = survival_curve(setup.sw, h1.clustering,
                                       h1.assignment, setup.hw, options);
  const auto curve_crit = survival_curve(setup.sw, crit.clustering,
                                         crit.assignment, setup.hw, options);

  TextTable table({"q (per-node)", "H1 crit-surv", "pairing crit-surv",
                   "H1 E[loss]", "pairing E[loss]"});
  for (std::size_t i = 0; i < curve_h1.size(); ++i) {
    table.add_row({fmt(curve_h1[i].hw_failure, 2),
                   fmt(curve_h1[i].critical_survival),
                   fmt(curve_crit[i].critical_survival),
                   fmt(curve_h1[i].expected_criticality_loss, 2),
                   fmt(curve_crit[i].expected_criticality_loss, 2)});
  }
  std::cout << table.render();
  const double crossover = crossover_point(curve_h1, curve_crit);
  if (crossover >= 0.0) {
    std::cout << "\ncurves cross at q ~= " << fmt(crossover)
              << ": below it containment wins, above it dispersion wins.\n";
  } else {
    std::cout << "\nno crossover in the sampled regime: one philosophy "
                 "dominates throughout.\n";
  }
}

void BM_SurvivalCurve(benchmark::State& state) {
  Setup setup;
  const Mapped m = setup.make(false);
  SweepOptions options;
  options.mission.trials = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(survival_curve(
        setup.sw, m.clustering, m.assignment, setup.hw, options));
  }
}
BENCHMARK(BM_SurvivalCurve)->Arg(1000)->Arg(10'000);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
