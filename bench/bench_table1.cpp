// Table 1 — "Example attributes of SW modules": the eight processes p1..p8
// with criticality (C), fault-tolerance replication (FT) and the timing
// triple (EST, TCD, CT). Values are the DESIGN.md reconstruction; the
// microbenchmarks time the attribute machinery behind the table.
#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "core/importance.h"

namespace {

using namespace fcm;
using namespace fcm::core;

void print_reproduction() {
  bench::banner("Table 1: Example attributes of SW modules");
  TextTable table({"Process", "C", "FT", "EST", "TCD", "CT", "importance"});
  for (const example98::ProcessSpec& spec : example98::table1()) {
    const Attributes attrs = spec.to_attributes();
    table.add_row({spec.name, std::to_string(spec.criticality),
                   std::to_string(spec.replication),
                   std::to_string(spec.est_ms), std::to_string(spec.tcd_ms),
                   std::to_string(spec.ct_ms), fmt(importance(attrs))});
  }
  std::cout << table.render();
  std::cout << "\n(EST/TCD/CT in ms; digits reconstructed — see DESIGN.md;"
               "\n importance = weighted attribute sum of Section 5.1)\n";
}

void BM_AttributeCombine(benchmark::State& state) {
  const Attributes a = example98::table1()[0].to_attributes();
  const Attributes b = example98::table1()[4].to_attributes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(combine(a, b));
  }
}
BENCHMARK(BM_AttributeCombine);

void BM_Importance(benchmark::State& state) {
  const Attributes attrs = example98::table1()[0].to_attributes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(importance(attrs));
  }
}
BENCHMARK(BM_Importance);

void BM_Table1Construction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(example98::make_instance());
  }
}
BENCHMARK(BM_Table1Construction);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
