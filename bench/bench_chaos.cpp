// bench_chaos — goodput and tail latency of the serve daemon under seeded
// chaos (DESIGN.md §15).
//
// The reproduction artifact sweeps three chaos mixes — healthy (no faults),
// the default mix (~half the traffic faulted), and a hostile mix (faults
// dominate) — each driving one in-process server through 4 chaos client
// threads with tight admission bounds. Per mix it reports goodput (kOk
// responses per second), p99 latency of clean round trips, and the outcome
// partition (ok / rejected / shed / expired / injected drops / hard
// errors). After each mix the server is stopped and its terminal-outcome
// ledger checked for exact balance; `ledger_balanced` in BENCH_chaos.json
// is the conjunction over all mixes and the headline claim CI tracks —
// chaos costs throughput, never accounting.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/query.h"
#include "serve/server.h"

namespace fcm {
namespace {

namespace protocol = serve::protocol;

constexpr int kClients = 4;
constexpr int kStepsPerClient = 48;
constexpr std::uint64_t kSeed = 2026;

// All answerable from warm caches after one pass (kMetrics excluded: its
// payload is legitimately non-deterministic).
const std::vector<std::pair<protocol::Opcode, std::string>>& request_mix() {
  static const std::vector<std::pair<protocol::Opcode, std::string>> kMix = {
      {protocol::Opcode::kMapping, ""},
      {protocol::Opcode::kMapping, "heuristic=h2 approach=b"},
      {protocol::Opcode::kInfluence, ""},
      {protocol::Opcode::kReplan, "fail=0"},
      {protocol::Opcode::kPing, "x"},
  };
  return kMix;
}

struct Mix {
  const char* name;
  serve::ChaosOptions options;
};

std::vector<Mix> mixes() {
  Mix healthy{"healthy", {}};
  healthy.options.byte_split = 0;
  healthy.options.truncate = 0;
  healthy.options.stall = 0;
  healthy.options.kill_after_send = 0;
  healthy.options.reset = 0;
  healthy.options.flood = 0;
  healthy.options.tiny_deadline = 0;

  Mix standard{"standard", {}};  // the ChaosOptions defaults

  Mix hostile{"hostile", {}};
  hostile.options.byte_split = 200;
  hostile.options.truncate = 120;
  hostile.options.stall = 100;
  hostile.options.kill_after_send = 120;
  hostile.options.reset = 120;
  hostile.options.flood = 120;
  hostile.options.tiny_deadline = 150;

  return {healthy, standard, hostile};
}

struct MixResult {
  std::string name;
  double goodput_rps = 0.0;
  double p99_us = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t injected = 0;
  std::uint64_t hard_errors = 0;
  bool ledger_balanced = false;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

MixResult measure(const Mix& mix) {
  serve::QueryEngine engine;
  serve::ServerOptions options;
  options.workers = 4;
  options.max_queued_requests = 16;
  options.max_queued_per_connection = 4;
  serve::Server server(engine, options);
  server.start();

  // Warm every distinct query once so the sweep measures the resident
  // steady state under chaos, not first-touch planning.
  {
    serve::Client warmup("127.0.0.1", server.port());
    for (const auto& [opcode, payload] : request_mix()) {
      (void)warmup.request(opcode, payload);
    }
  }

  struct Lane {
    std::vector<double> clean_latencies_us;
    std::uint64_t ok = 0, rejected = 0, shed = 0, expired = 0, injected = 0,
                  hard = 0;
  };
  std::vector<Lane> lanes(kClients);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        Lane& lane = lanes[static_cast<std::size_t>(t)];
        try {
          serve::RetryPolicy policy;
          policy.max_attempts = 3;
          policy.initial_backoff = Duration::millis(1);
          policy.jitter_seed = kSeed + static_cast<std::uint64_t>(t);
          serve::ChaosConnection chaos(
              "127.0.0.1", server.port(),
              serve::ChaosSchedule(kSeed * 10 + static_cast<std::uint64_t>(t),
                                   mix.options),
              Duration::millis(60'000), policy);
          for (int s = 0; s < kStepsPerClient; ++s) {
            const auto& [opcode, payload] =
                request_mix()[static_cast<std::size_t>(s) %
                              request_mix().size()];
            const auto start = std::chrono::steady_clock::now();
            const std::vector<serve::ChaosReport> reports =
                chaos.step(opcode, payload);
            const std::chrono::duration<double, std::micro> elapsed =
                std::chrono::steady_clock::now() - start;
            for (const serve::ChaosReport& report : reports) {
              switch (report.outcome) {
                case serve::ChaosOutcome::kOk: ++lane.ok; break;
                case serve::ChaosOutcome::kRejected: ++lane.rejected; break;
                case serve::ChaosOutcome::kShed: ++lane.shed; break;
                case serve::ChaosOutcome::kExpired: ++lane.expired; break;
                case serve::ChaosOutcome::kInjectedDrop:
                  ++lane.injected;
                  break;
                case serve::ChaosOutcome::kErrorStatus:
                case serve::ChaosOutcome::kConnectionError:
                  ++lane.hard;
                  break;
              }
            }
            if (reports.size() == 1 &&
                reports.front().outcome == serve::ChaosOutcome::kOk) {
              lane.clean_latencies_us.push_back(elapsed.count());
            }
          }
        } catch (const std::exception&) {
          ++lane.hard;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  server.stop();

  MixResult result;
  result.name = mix.name;
  std::vector<double> latencies;
  for (const Lane& lane : lanes) {
    latencies.insert(latencies.end(), lane.clean_latencies_us.begin(),
                     lane.clean_latencies_us.end());
    result.ok += lane.ok;
    result.rejected += lane.rejected;
    result.shed += lane.shed;
    result.expired += lane.expired;
    result.injected += lane.injected;
    result.hard_errors += lane.hard;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p99_us = quantile(latencies, 0.99);
  result.goodput_rps =
      wall.count() > 0.0 ? static_cast<double>(result.ok) / wall.count()
                         : 0.0;
  const serve::ServerStats stats = server.stats();
  result.ledger_balanced =
      stats.requests_accepted ==
          stats.requests_served + stats.requests_abandoned &&
      stats.requests_served == stats.requests_ok + stats.requests_errored +
                                   stats.requests_rejected +
                                   stats.requests_shed +
                                   stats.requests_expired;
  return result;
}

void print_reproduction() {
  bench::banner("fcm serve under seeded chaos: goodput and outcome ledger");

  std::vector<MixResult> results;
  for (const Mix& mix : mixes()) results.push_back(measure(mix));
  bool all_balanced = true;
  for (const MixResult& r : results) all_balanced &= r.ledger_balanced;

  TextTable table({"mix", "goodput req/s", "p99 us", "ok", "rejected",
                   "shed", "expired", "injected", "hard", "ledger"});
  for (const MixResult& r : results) {
    table.add_row({r.name, fmt(r.goodput_rps, 1), fmt(r.p99_us, 1),
                   std::to_string(r.ok), std::to_string(r.rejected),
                   std::to_string(r.shed), std::to_string(r.expired),
                   std::to_string(r.injected), std::to_string(r.hard_errors),
                   r.ledger_balanced ? "balanced" : "UNBALANCED"});
  }
  std::cout << table.render();
  std::cout << "ledger balanced across every mix: "
            << (all_balanced ? "yes" : "NO") << "\n(" << kClients
            << " chaos clients x " << kStepsPerClient
            << " steps per mix, seed " << kSeed << ", "
            << std::thread::hardware_concurrency()
            << " hardware threads here)\n";

  std::ofstream json("BENCH_chaos.json");
  json << "{\n"
       << "  \"bench\": \"serve_chaos_mix_sweep\",\n"
       << "  \"clients\": " << kClients << ",\n"
       << "  \"steps_per_client\": " << kStepsPerClient << ",\n"
       << "  \"seed\": " << kSeed << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"mixes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    json << "    {\"mix\": \"" << r.name
         << "\", \"goodput_rps\": " << r.goodput_rps
         << ", \"p99_us\": " << r.p99_us << ", \"ok\": " << r.ok
         << ", \"rejected\": " << r.rejected << ", \"shed\": " << r.shed
         << ", \"expired\": " << r.expired << ", \"injected\": " << r.injected
         << ", \"hard_errors\": " << r.hard_errors
         << ", \"ledger_balanced\": "
         << (r.ledger_balanced ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"ledger_balanced\": " << (all_balanced ? "true" : "false")
       << "\n}\n";
  std::cout << "(record written to BENCH_chaos.json)\n";
}

// Microbenchmark: drawing one fault decision from a schedule.
void BM_ChaosScheduleNext(benchmark::State& state) {
  serve::ChaosSchedule schedule(kSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.next());
  }
}
BENCHMARK(BM_ChaosScheduleNext);

// Microbenchmark: one healthy chaos step over loopback (the no-fault
// baseline every injected fault is compared against).
void BM_HealthyChaosStep(benchmark::State& state) {
  serve::QueryEngine engine;
  serve::Server server(engine, {});
  server.start();
  serve::ChaosOptions none;
  none.byte_split = none.truncate = none.stall = none.kill_after_send = 0;
  none.reset = none.flood = none.tiny_deadline = 0;
  serve::ChaosConnection chaos("127.0.0.1", server.port(),
                               serve::ChaosSchedule(kSeed, none));
  (void)chaos.step(protocol::Opcode::kMapping, "");
  for (auto _ : state) {
    benchmark::DoNotOptimize(chaos.step(protocol::Opcode::kMapping, ""));
  }
  server.stop();
}
BENCHMARK(BM_HealthyChaosStep)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fcm

FCM_BENCH_MAIN(fcm::print_reproduction)
