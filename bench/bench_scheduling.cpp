// Ablation — the collocation schedulability oracle: preemptive EDF
// (exact, polynomial) vs exact non-preemptive branch-and-bound vs the
// NP-EDF heuristic, on random job sets of growing size. This is the check
// every clustering step pays for ("several well-known scheduling
// algorithms can be used to check the feasibility", §6).
#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "sched/edf.h"
#include "sched/feasibility.h"
#include "sched/nonpreemptive.h"

namespace {

using namespace fcm;
using namespace fcm::sched;

std::vector<Job> random_jobs(std::size_t n, std::uint64_t seed,
                             double load = 0.7) {
  Rng rng(seed);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    Job job;
    job.id = JobId(static_cast<std::uint32_t>(i));
    job.name = "j" + std::to_string(i);
    const std::int64_t est = rng.range(0, 40);
    const std::int64_t ct = rng.range(1, 10);
    const std::int64_t slack =
        rng.range(0, static_cast<std::int64_t>(12.0 * (1.0 - load)) + 8);
    job.release = Instant::epoch() + Duration::micros(est);
    job.cost = Duration::micros(ct);
    job.deadline = Instant::epoch() + Duration::micros(est + ct + slack);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void print_reproduction() {
  bench::banner("Scheduling oracle comparison (100 random 8-job sets)");
  int edf_yes = 0, np_exact_yes = 0, np_heur_yes = 0, heuristic_misses = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const auto jobs = random_jobs(8, seed);
    const bool edf = edf_feasible(jobs);
    const bool np = np_feasible(jobs);
    const bool heur = np_edf_schedule(jobs).feasible;
    edf_yes += edf;
    np_exact_yes += np;
    np_heur_yes += heur;
    if (np && !heur) ++heuristic_misses;
  }
  TextTable table({"oracle", "feasible sets / 100"});
  table.add_row({"preemptive EDF (exact)", std::to_string(edf_yes)});
  table.add_row({"non-preemptive exact (B&B)", std::to_string(np_exact_yes)});
  table.add_row({"non-preemptive EDF heuristic", std::to_string(np_heur_yes)});
  std::cout << table.render();
  std::cout << "\npreemption dominates (" << edf_yes << " >= "
            << np_exact_yes << "); the NP-EDF heuristic under-accepts "
            << heuristic_misses << " sets the exact search proves feasible\n";
}

void BM_EdfFeasibility(benchmark::State& state) {
  const auto jobs = random_jobs(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_feasible(jobs));
  }
}
BENCHMARK(BM_EdfFeasibility)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_NpExactFeasibility(benchmark::State& state) {
  const auto jobs = random_jobs(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(np_feasible(jobs));
  }
}
BENCHMARK(BM_NpExactFeasibility)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_NpEdfHeuristic(benchmark::State& state) {
  const auto jobs = random_jobs(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(np_edf_schedule(jobs).feasible);
  }
}
BENCHMARK(BM_NpEdfHeuristic)->Arg(4)->Arg(16)->Arg(64);

void BM_OracleCacheHit(benchmark::State& state) {
  FeasibilityOracle oracle;
  const auto jobs = random_jobs(16, 5);
  oracle.feasible(jobs);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.feasible(jobs));
  }
}
BENCHMARK(BM_OracleCacheHit);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
