// Ablation — the persistent work-stealing executor (fcm::exec) against the
// retired spawn-per-call engine it replaced. The headline workload is the
// paper's Table 1 instance (8 processes, full propagation) evaluated in
// small Monte Carlo blocks, where per-call thread spawning used to dominate:
// scoring one candidate mapping is ~a millisecond of compute sharded into 16
// blocks, and the old engine paid seven thread creations + joins for it on
// every call. The persistent pool parks its workers between calls instead.
// Results are recorded to BENCH_exec.json together with the bitwise-identity
// check (the two engines must disagree about nothing but speed).
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/montecarlo.h"
#include "exec/executor.h"
#include "mapping/assignment.h"

namespace {

using namespace fcm;
using namespace fcm::dependability;

// The Table 1 instance has 8 processes; 8 lanes scores one replica set per
// lane. Blocks are deliberately tiny — this is the "score one candidate
// mapping quickly inside a sweep" regime, where the old engine's per-call
// thread spawning was pure overhead.
constexpr std::uint32_t kThreads = 8;
constexpr std::uint32_t kTrials = 256;
constexpr std::uint32_t kTrialsPerBlock = 16;  // -> 16 small blocks

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  mapping::SwGraph sw = mapping::SwGraph::build(
      instance.hierarchy, instance.influence, instance.processes);
  mapping::HwGraph hw = mapping::HwGraph::complete(6);
  mapping::ClusteringResult clustering;
  mapping::Assignment assignment;

  Setup() {
    mapping::ClusteringOptions options;
    options.target_clusters = 6;
    mapping::ClusterEngine engine(sw, options);
    clustering = engine.h1_greedy();
    assignment = mapping::assign_by_importance(sw, clustering, hw);
  }

  [[nodiscard]] DependabilityReport evaluate() const {
    MissionModel mission;
    mission.hw_failure = Probability(0.1);
    mission.sw_fault = Probability(0.02);
    mission.propagate = true;
    mission.trials = kTrials;
    mission.trials_per_block = kTrialsPerBlock;
    mission.threads = kThreads;
    return evaluate_mapping(sw, clustering, assignment, hw, mission, 2026);
  }
};

bool reports_identical(const DependabilityReport& a,
                       const DependabilityReport& b) {
  return a.system_survival == b.system_survival &&
         a.critical_survival == b.critical_survival &&
         a.expected_criticality_loss == b.expected_criticality_loss &&
         a.process_survival == b.process_survival;
}

// Median-of-runs microseconds for one evaluate() call on `backend`.
double evaluate_us(const Setup& setup, exec::Backend backend, int runs,
                   DependabilityReport& last) {
  exec::set_backend_for_tests(backend);
  for (int warm = 0; warm < 3; ++warm) (void)setup.evaluate();
  std::vector<double> samples;
  samples.reserve(runs);
  for (int r = 0; r < runs; ++r) {
    const auto start = std::chrono::steady_clock::now();
    last = setup.evaluate();
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    samples.push_back(elapsed.count());
  }
  exec::set_backend_for_tests(exec::Backend::kPersistentPool);
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Median microseconds for one empty 16-block submission: pure scheduling
// overhead, no compute — the upper bound on what the pool can save.
double empty_submission_us(exec::Backend backend) {
  exec::set_backend_for_tests(backend);
  constexpr int kReps = 200;
  for (int warm = 0; warm < 10; ++warm) {
    exec::parallel_for_blocks(16, kThreads,
                              [](std::uint64_t, std::uint32_t) {});
  }
  std::vector<double> samples;
  samples.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    exec::parallel_for_blocks(16, kThreads,
                              [](std::uint64_t, std::uint32_t) {});
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    samples.push_back(elapsed.count());
  }
  exec::set_backend_for_tests(exec::Backend::kPersistentPool);
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void print_reproduction() {
  bench::banner("persistent pool vs spawn-per-call (Table 1 workload)");
  Setup setup;

  DependabilityReport pool_report, spawn_report;
  const double spawn_us =
      evaluate_us(setup, exec::Backend::kSpawnPerCall, 31, spawn_report);
  const double pool_us =
      evaluate_us(setup, exec::Backend::kPersistentPool, 31, pool_report);
  const bool identical = reports_identical(pool_report, spawn_report);
  const double speedup = spawn_us <= 0.0 ? 0.0 : spawn_us / pool_us;

  const double spawn_empty_us =
      empty_submission_us(exec::Backend::kSpawnPerCall);
  const double pool_empty_us =
      empty_submission_us(exec::Backend::kPersistentPool);

  TextTable table({"engine", "evaluate us", "empty submission us"});
  table.add_row({"spawn-per-call", fmt(spawn_us, 1), fmt(spawn_empty_us, 1)});
  table.add_row({"persistent pool", fmt(pool_us, 1), fmt(pool_empty_us, 1)});
  std::cout << table.render();
  std::cout << "speedup (evaluate, pool vs spawn): " << fmt(speedup, 2)
            << "x; reports bitwise identical: " << (identical ? "yes" : "NO")
            << "\n(" << kTrials << " trials in " << kTrials / kTrialsPerBlock
            << " blocks of " << kTrialsPerBlock << ", " << kThreads
            << " lanes requested, "
            << std::thread::hardware_concurrency()
            << " hardware threads here; the spawn engine pays "
            << kThreads - 1 << " thread creations per call either way)\n";

  std::ofstream json("BENCH_exec.json");
  json << "{\n"
       << "  \"bench\": \"exec_pool_vs_spawn\",\n"
       << "  \"workload\": \"table1_montecarlo\",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"trials_per_block\": " << kTrialsPerBlock << ",\n"
       << "  \"threads\": " << kThreads << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"spawn_per_call_us\": " << spawn_us << ",\n"
       << "  \"persistent_pool_us\": " << pool_us << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"empty_submission_spawn_us\": " << spawn_empty_us << ",\n"
       << "  \"empty_submission_pool_us\": " << pool_empty_us << ",\n"
       << "  \"bitwise_identical\": " << (identical ? "true" : "false")
       << "\n}\n";
  std::cout << "(record written to BENCH_exec.json)\n";
}

void BM_EmptySubmission(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? exec::Backend::kPersistentPool
                                           : exec::Backend::kSpawnPerCall;
  exec::set_backend_for_tests(backend);
  for (auto _ : state) {
    exec::parallel_for_blocks(16, kThreads,
                              [](std::uint64_t, std::uint32_t) {});
  }
  exec::set_backend_for_tests(exec::Backend::kPersistentPool);
  state.SetLabel(state.range(0) == 0 ? "pool" : "spawn");
}
BENCHMARK(BM_EmptySubmission)->Arg(0)->Arg(1);

void BM_SmallBlockMonteCarlo(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? exec::Backend::kPersistentPool
                                           : exec::Backend::kSpawnPerCall;
  Setup setup;
  exec::set_backend_for_tests(backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.evaluate());
  }
  exec::set_backend_for_tests(exec::Backend::kPersistentPool);
  state.SetItemsProcessed(state.iterations() * kTrials);
  state.SetLabel(state.range(0) == 0 ? "pool" : "spawn");
}
BENCHMARK(BM_SmallBlockMonteCarlo)->Arg(0)->Arg(1);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
