// Figure 1 — "The FCM Hierarchy": SW function sets partitioned into the
// three-level hierarchy (processes / tasks / procedures) with vertical and
// horizontal associations. The reproduction builds two SW function sets and
// prints the tree; the benchmarks scale hierarchy construction and the
// R1/R2 audit.
#include "bench_util.h"
#include "core/hierarchy.h"
#include "graph/dot.h"

namespace {

using namespace fcm;
using namespace fcm::core;

FcmHierarchy build_function_sets(int sets, int tasks_per_set,
                                 int procedures_per_task) {
  FcmHierarchy h;
  for (int s = 1; s <= sets; ++s) {
    const FcmId process =
        h.create("set" + std::to_string(s), Level::kProcess);
    for (int t = 1; t <= tasks_per_set; ++t) {
      const FcmId task = h.create_child(
          process, "set" + std::to_string(s) + ".task" + std::to_string(t));
      for (int f = 1; f <= procedures_per_task; ++f) {
        h.create_child(task, h.get(task).name + ".proc" + std::to_string(f));
      }
    }
  }
  return h;
}

void print_tree(const FcmHierarchy& h, FcmId id, int depth) {
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
            << to_string(h.get(id).level) << "  " << h.get(id).name << '\n';
  for (const FcmId child : h.children(id)) print_tree(h, child, depth + 1);
}

void print_reproduction() {
  bench::banner("Figure 1: The FCM hierarchy (two SW function sets)");
  const FcmHierarchy h = build_function_sets(2, 2, 2);
  for (const FcmId root : h.at_level(Level::kProcess)) {
    print_tree(h, root, 0);
  }
  h.audit();
  std::cout << "audit: R1 (adjacent levels) and R2 (tree) hold for "
            << h.size() << " FCMs\n";
}

void BM_BuildHierarchy(benchmark::State& state) {
  const int sets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_function_sets(sets, 4, 4));
  }
  state.SetItemsProcessed(state.iterations() * sets * (1 + 4 + 16));
}
BENCHMARK(BM_BuildHierarchy)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Audit(benchmark::State& state) {
  const FcmHierarchy h =
      build_function_sets(static_cast<int>(state.range(0)), 4, 4);
  for (auto _ : state) {
    h.audit();
  }
}
BENCHMARK(BM_Audit)->Arg(8)->Arg(64);

void BM_SiblingsQuery(benchmark::State& state) {
  FcmHierarchy h = build_function_sets(1, 1, 64);
  const FcmId task = h.at_level(Level::kTask).front();
  const FcmId first = h.children(task).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.siblings(first));
  }
}
BENCHMARK(BM_SiblingsQuery);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
