// Figure 7 — "Factoring criticality into integration": §6.2's Approach B
// pairs the most critical process with the least critical, hits the
// narrated replicate conflict between the p3 copies, and resolves it by
// dissolving the previous pair — producing the six clusters of the figure.
#include "bench_util.h"
#include "core/example98.h"
#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/quality.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  SwGraph sw = SwGraph::build(instance.hierarchy, instance.influence,
                              instance.processes);
  HwGraph hw = HwGraph::complete(core::example98::kHwNodes);
};

void print_reproduction() {
  bench::banner("Figure 7: criticality-driven integration (Approach B)");
  Setup setup;
  ClusteringOptions options;
  options.target_clusters = setup.hw.node_count();
  ClusterEngine engine(setup.sw, options);
  const ClusteringResult result = engine.criticality_pairing();

  std::cout << "pairing steps:\n";
  for (const std::string& step : result.steps) {
    std::cout << "  " << step << '\n';
  }
  const Assignment assignment =
      assign_lexicographic(setup.sw, result, setup.hw);
  std::cout << "\nmapped SW processes per HW node:\n";
  const auto names = result.cluster_names(setup.sw);
  for (std::uint32_t c = 0; c < names.size(); ++c) {
    std::cout << "  " << setup.hw.node(assignment.hw_of[c]).name << " <- {";
    for (std::size_t i = 0; i < names[c].size(); ++i) {
      if (i > 0) std::cout << ',';
      std::cout << names[c][i];
    }
    std::cout << "}\n";
  }
  std::cout << "\ncondensed influence graph:\n";
  bench::print_edges(result.quotient);
  const MappingQuality quality =
      evaluate(setup.sw, result, assignment, setup.hw);
  std::cout << '\n' << quality.report();
}

void BM_CriticalityPairing(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = setup.hw.node_count();
    ClusterEngine engine(setup.sw, options);
    benchmark::DoNotOptimize(engine.criticality_pairing());
  }
}
BENCHMARK(BM_CriticalityPairing);

void BM_LexicographicAssignment(benchmark::State& state) {
  Setup setup;
  ClusteringOptions options;
  options.target_clusters = setup.hw.node_count();
  ClusterEngine engine(setup.sw, options);
  const ClusteringResult result = engine.criticality_pairing();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assign_lexicographic(setup.sw, result, setup.hw));
  }
}
BENCHMARK(BM_LexicographicAssignment);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
