// Ablation — closing the loop on Figure 3: the §6 influence values are
// *assumed* in the paper; here an executable platform realizes them
// (sim/example98_platform.h) and a fault-injection campaign measures them
// back. Direct edges should recover the Fig. 3 weights; indirectly coupled
// pairs should recover the transitive interaction Eq. 3 predicts.
#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "core/separation.h"
#include "sim/example98_platform.h"
#include "sim/influence_estimator.h"

namespace {

using namespace fcm;

void print_reproduction() {
  bench::banner(
      "Fig. 3 closed loop: assumed influence vs measured-by-injection");
  const sim::PlatformSpec spec = sim::example98_platform();
  sim::InfluenceEstimator estimator(spec, 777);
  sim::EstimatorOptions options;
  options.trials = 300;
  options.horizon = Duration::millis(100);
  const sim::EstimationResult measured = estimator.estimate_all(options);

  TextTable direct({"edge", "assumed (Fig. 3)", "measured"});
  for (const sim::Example98Edge& edge : sim::example98_edges()) {
    direct.add_row({spec.tasks[edge.from].name + " -> " +
                        spec.tasks[edge.to].name,
                    fmt(edge.weight, 2),
                    fmt(measured.influence.at(edge.from, edge.to))});
  }
  std::cout << direct.render();

  // Transitive pairs: no direct edge, but Eq. 3 predicts interaction.
  const core::example98::Instance instance =
      core::example98::make_instance();
  const core::SeparationAnalysis analytic(instance.influence.to_matrix());
  TextTable indirect(
      {"pair (no direct edge)", "Eq. 3 interaction", "measured"});
  const std::pair<int, int> pairs[] = {{1, 3}, {1, 5}, {2, 6}, {4, 7}};
  for (const auto& [i, j] : pairs) {
    indirect.add_row({"p" + std::to_string(i) + " -> p" + std::to_string(j),
                      fmt(analytic.interaction(static_cast<std::size_t>(i - 1),
                                               static_cast<std::size_t>(j - 1))),
                      fmt(measured.influence.at(
                          static_cast<std::uint32_t>(i - 1),
                          static_cast<std::uint32_t>(j - 1)))});
  }
  std::cout << '\n' << indirect.render();
  std::cout << "\n(direct edges recover the assumed weights; indirect pairs "
               "track the\n Eq. 3 transitive series — measured values run "
               "slightly high because a\n tainted region can be consumed "
               "once more before its clean overwrite)\n";
}

void BM_Example98Campaign(benchmark::State& state) {
  const sim::PlatformSpec spec = sim::example98_platform();
  const auto trials = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    sim::InfluenceEstimator estimator(spec, 55);
    sim::EstimatorOptions options;
    options.trials = trials;
    options.horizon = Duration::millis(100);
    benchmark::DoNotOptimize(estimator.estimate_from(0, options));
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_Example98Campaign)->Arg(10)->Arg(50);

void BM_Example98PlatformBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::example98_platform());
  }
}
BENCHMARK(BM_Example98PlatformBuild);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
