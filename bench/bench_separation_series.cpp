// Ablation — Eq. 3 separation series truncation: "at some point,
// higher-order terms are likely to be small enough to be neglected". Shows
// the separation matrix of the §6 process graph converging with the series
// order, and the cost of higher orders on larger systems.
#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/example98.h"
#include "core/separation.h"

namespace {

using namespace fcm;
using namespace fcm::core;

void print_reproduction() {
  bench::banner("Eq. 3 separation series truncation (Section 6 processes)");
  const example98::Instance instance = example98::make_instance();
  const graph::Matrix p = instance.influence.to_matrix();

  TextTable table({"order", "sep(p1,p5)", "sep(p6,p2)", "sep(p1,p8)",
                   "min separation"});
  for (int order = 1; order <= 8; ++order) {
    const SeparationAnalysis analysis(
        p, SeparationOptions{.max_order = order, .epsilon = 0.0});
    table.add_row({std::to_string(order),
                   fmt(analysis.separation(0, 4).value(), 6),
                   fmt(analysis.separation(5, 1).value(), 6),
                   fmt(analysis.separation(0, 7).value(), 6),
                   fmt(analysis.min_separation().value(), 6)});
  }
  std::cout << table.render();
  std::cout << "\n(p1->p5 has no direct edge: its interaction appears only "
               "through\n transitive chains p1->p4->p5, converging by order "
               "~3)\n";
}

graph::Matrix random_influence(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  graph::Matrix p(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform() < 0.3) {
        p.at(i, j) = rng.uniform(0.01, 0.4);
      }
    }
  }
  return p;
}

void BM_SeparationByOrder(benchmark::State& state) {
  const graph::Matrix p = random_influence(32, 7);
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeparationAnalysis(
        p, SeparationOptions{.max_order = order, .epsilon = 0.0}));
  }
}
BENCHMARK(BM_SeparationByOrder)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SeparationBySize(benchmark::State& state) {
  const graph::Matrix p =
      random_influence(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeparationAnalysis(p));
  }
}
BENCHMARK(BM_SeparationBySize)->Arg(8)->Arg(32)->Arg(128);

void BM_EpsilonEarlyStop(benchmark::State& state) {
  // Epsilon truncation skips negligible high-order terms.
  const graph::Matrix p = random_influence(64, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeparationAnalysis(
        p, SeparationOptions{.max_order = 12, .epsilon = 1e-6}));
  }
}
BENCHMARK(BM_EpsilonEarlyStop);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
