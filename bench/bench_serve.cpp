// bench_serve — latency/throughput of the resident planning daemon.
//
// The reproduction artifact is a sweep over server worker counts: for each
// workers ∈ {1, 4, 8} an in-process `serve::Server` is started on an
// ephemeral port, warmed, then driven by a small deterministic client load;
// the table reports p50/p99 request latency and requests/s. Alongside it,
// the cold-vs-warm contrast that motivates a resident daemon at all: one
// uncached `QueryEngine::one_shot` mapping evaluation (pay the planner
// sweep) vs. the warm p50 over the socket (response-memo hit plus protocol
// round trip). Results land in BENCH_serve.json; `warm_below_cold` is the
// headline claim CI and EXPERIMENTS.md track.
//
// All measurements use the public client path, so the numbers include
// framing, syscalls, and loopback — what a real client sees.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "serve/client.h"
#include "serve/query.h"
#include "serve/server.h"

namespace fcm {
namespace {

namespace protocol = serve::protocol;

constexpr int kRequestsPerConnection = 48;
constexpr int kConnections = 2;

// The steady-state mix: all answerable from warm caches after one pass.
const std::vector<std::pair<protocol::Opcode, std::string>>& request_mix() {
  static const std::vector<std::pair<protocol::Opcode, std::string>> kMix = {
      {protocol::Opcode::kMapping, ""},
      {protocol::Opcode::kMapping, "heuristic=h2 approach=b"},
      {protocol::Opcode::kInfluence, ""},
      {protocol::Opcode::kReplan, "fail=0"},
      {protocol::Opcode::kPing, "x"},
  };
  return kMix;
}

struct SweepPoint {
  std::uint32_t workers;
  double p50_us;
  double p99_us;
  double rps;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

SweepPoint measure_workers(std::uint32_t workers) {
  serve::QueryEngine engine;
  serve::ServerOptions options;
  options.workers = workers;
  serve::Server server(engine, options);
  server.start();

  // Warm every distinct query once so the sweep measures the resident
  // steady state, not first-touch planning.
  {
    serve::Client warmup("127.0.0.1", server.port());
    for (const auto& [opcode, payload] : request_mix()) {
      (void)warmup.request(opcode, payload);
    }
  }

  std::vector<std::vector<double>> lanes(kConnections);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kConnections; ++c) {
      clients.emplace_back([&, c] {
        serve::Client client("127.0.0.1", server.port());
        for (int r = 0; r < kRequestsPerConnection; ++r) {
          const auto& [opcode, payload] =
              request_mix()[static_cast<std::size_t>(r) % request_mix().size()];
          const auto start = std::chrono::steady_clock::now();
          (void)client.request(opcode, payload);
          const std::chrono::duration<double, std::micro> elapsed =
              std::chrono::steady_clock::now() - start;
          lanes[static_cast<std::size_t>(c)].push_back(elapsed.count());
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  server.stop();

  std::vector<double> latencies;
  for (const std::vector<double>& lane : lanes) {
    latencies.insert(latencies.end(), lane.begin(), lane.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double rps =
      wall.count() > 0.0
          ? static_cast<double>(latencies.size()) / wall.count()
          : 0.0;
  return {workers, quantile(latencies, 0.5), quantile(latencies, 0.99), rps};
}

// One full cold evaluation: fresh engine, nothing cached, the planner
// heuristic sweep runs from scratch — the price a one-shot `fcm_tool plan`
// pays per invocation.
double cold_single_shot_us() {
  const auto start = std::chrono::steady_clock::now();
  (void)serve::QueryEngine::one_shot(protocol::Opcode::kMapping, "");
  const std::chrono::duration<double, std::micro> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// Warm p50 over the socket: response memo hit + protocol round trip.
double warm_p50_us() {
  serve::QueryEngine engine;
  serve::Server server(engine, {});
  server.start();
  serve::Client client("127.0.0.1", server.port());
  (void)client.request(protocol::Opcode::kMapping, "");  // populate memo
  std::vector<double> samples;
  for (int r = 0; r < 64; ++r) {
    const auto start = std::chrono::steady_clock::now();
    (void)client.request(protocol::Opcode::kMapping, "");
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    samples.push_back(elapsed.count());
  }
  server.stop();
  std::sort(samples.begin(), samples.end());
  return quantile(samples, 0.5);
}

void print_reproduction() {
  bench::banner("fcm serve: worker sweep (loopback, warm caches)");

  std::vector<SweepPoint> sweep;
  for (const std::uint32_t workers : {1u, 4u, 8u}) {
    sweep.push_back(measure_workers(workers));
  }
  const double cold_us = cold_single_shot_us();
  const double warm_us = warm_p50_us();
  const bool warm_below_cold = warm_us < cold_us;

  TextTable table({"workers", "p50 us", "p99 us", "req/s"});
  for (const SweepPoint& point : sweep) {
    table.add_row({std::to_string(point.workers), fmt(point.p50_us, 1),
                   fmt(point.p99_us, 1), fmt(point.rps, 1)});
  }
  std::cout << table.render();
  std::cout << "cold one-shot mapping:  " << fmt(cold_us, 1) << " us\n"
            << "warm serve p50:         " << fmt(warm_us, 1) << " us\n"
            << "warm below cold:        " << (warm_below_cold ? "yes" : "NO")
            << "\n(" << kConnections << " connections x "
            << kRequestsPerConnection << " requests per sweep point, "
            << std::thread::hardware_concurrency()
            << " hardware threads here)\n";

  std::ofstream json("BENCH_serve.json");
  json << "{\n"
       << "  \"bench\": \"serve_worker_sweep\",\n"
       << "  \"connections\": " << kConnections << ",\n"
       << "  \"requests_per_connection\": " << kRequestsPerConnection << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"server_threads\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json << "    {\"threads\": " << sweep[i].workers
         << ", \"p50_us\": " << sweep[i].p50_us
         << ", \"p99_us\": " << sweep[i].p99_us
         << ", \"rps\": " << sweep[i].rps << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"cold_single_shot_us\": " << cold_us << ",\n"
       << "  \"warm_p50_us\": " << warm_us << ",\n"
       << "  \"warm_below_cold\": " << (warm_below_cold ? "true" : "false")
       << "\n}\n";
  std::cout << "(record written to BENCH_serve.json)\n";
}

// Microbenchmark: one warm request/response round trip over loopback.
void BM_WarmMappingRoundTrip(benchmark::State& state) {
  serve::QueryEngine engine;
  serve::Server server(engine, {});
  server.start();
  serve::Client client("127.0.0.1", server.port());
  (void)client.request(protocol::Opcode::kMapping, "");
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.request(protocol::Opcode::kMapping, ""));
  }
  server.stop();
}
BENCHMARK(BM_WarmMappingRoundTrip)->Unit(benchmark::kMicrosecond);

// Microbenchmark: frame encode + decode, no sockets.
void BM_FrameCodec(benchmark::State& state) {
  const std::string payload(256, 'x');
  for (auto _ : state) {
    const std::string bytes =
        protocol::encode_request(protocol::Opcode::kPing, payload);
    protocol::FrameDecoder decoder;
    decoder.feed(bytes);
    protocol::Frame frame;
    benchmark::DoNotOptimize(decoder.next(frame));
  }
}
BENCHMARK(BM_FrameCodec);

}  // namespace
}  // namespace fcm

FCM_BENCH_MAIN(fcm::print_reproduction)
