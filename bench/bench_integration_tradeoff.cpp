// Ablation — the §6 tradeoff question: "Is there a limit to the level of
// integration one should design for?" Sweep the HW node count for the §6
// system, plan with the best feasible heuristic, and report containment,
// criticality exposure, and Monte Carlo dependability at each level.
#include "bench_util.h"
#include "common/error.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/montecarlo.h"
#include "mapping/planner.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

void print_reproduction() {
  bench::banner(
      "Integration tradeoff: HW node count sweep for the Section 6 system");
  TextTable table({"HW nodes", "plan", "cross-infl", "max-coloc-C",
                   "system surv @q=0.1", "E[crit loss]"});
  dependability::MissionModel mission;
  mission.hw_failure = Probability(0.1);
  mission.propagate = true;
  mission.trials = 20'000;

  for (int nodes = 3; nodes <= 12; ++nodes) {
    core::example98::Instance instance = core::example98::make_instance();
    const HwGraph hw = HwGraph::complete(nodes);
    IntegrationPlanner planner(instance.hierarchy, instance.influence,
                               instance.processes, hw);
    try {
      const Plan plan = planner.best_plan();
      const auto dep = dependability::evaluate_mapping(
          planner.sw_graph(), plan.clustering, plan.assignment, hw, mission,
          77);
      table.add_row({std::to_string(nodes), to_string(plan.heuristic),
                     fmt(plan.quality.cross_node_influence),
                     fmt(plan.quality.max_colocated_criticality, 0),
                     fmt(dep.system_survival),
                     fmt(dep.expected_criticality_loss)});
    } catch (const FcmError&) {
      table.add_row({std::to_string(nodes), "infeasible", "-", "-", "-",
                     "-"});
    }
  }
  std::cout << table.render();
  std::cout << "\nshape: below 3 nodes p1's TMR replicas cannot separate, "
               "so integration is\ninfeasible; more nodes disperse "
               "criticality but expose more cross-node\ninfluence — the "
               "paper's deferred tradeoff, quantified.\n";
}

void BM_PlanAtNodeCount(benchmark::State& state) {
  core::example98::Instance instance = core::example98::make_instance();
  const HwGraph hw = HwGraph::complete(static_cast<int>(state.range(0)));
  IntegrationPlanner planner(instance.hierarchy, instance.influence,
                             instance.processes, hw);
  for (auto _ : state) {
    try {
      benchmark::DoNotOptimize(planner.best_plan());
    } catch (const FcmError&) {
    }
  }
}
BENCHMARK(BM_PlanAtNodeCount)->Arg(4)->Arg(6)->Arg(8)->Arg(12);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
