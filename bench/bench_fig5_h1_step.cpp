// Figure 5 — "Using influence to combine the SW nodes to match the HW
// resources": the didactic H1 steps on the unreplicated process graph —
// combine {p1,p2,p3,p4} and {p7,p8}, then fold p5 into {p7,p8}, showing the
// Eq. 4 edge combination 1-(1-Px)(1-Py) the figure annotates.
#include "bench_util.h"
#include "core/example98.h"
#include "graph/quotient.h"

namespace {

using namespace fcm;
using namespace fcm::graph;

void print_reproduction() {
  bench::banner("Figure 5: didactic H1 combination on the process graph");
  const core::example98::Instance instance = core::example98::make_instance();
  const Digraph g = instance.influence.to_graph();

  // Stage 1: combine {p1,p2,p3,p4} and {p7,p8} (nodes are 0-indexed).
  Partition stage1 = Partition::identity(8);
  stage1.merge(0, 1);
  stage1.merge(0, 2);
  stage1.merge(0, 3);
  stage1.merge(6, 7);
  const Digraph q1 = quotient_graph(g, stage1);
  std::cout << "stage 1 — clusters {p1,p2,p3,p4}, {p5}, {p6}, {p7,p8}:\n";
  bench::print_edges(q1);

  // Stage 2: fold p5 into {p7,p8}; p5's separate influences on p7 and p8
  // combine via Eq. 4.
  Partition stage2 = stage1;
  stage2.merge(4, 6);
  const Digraph q2 = quotient_graph(g, stage2);
  std::cout << "\nstage 2 — p5 joins {p7,p8}:\n";
  bench::print_edges(q2);
  std::cout << "\nEq. 4 check: p5 -> {p7,p8} before merging was "
               "1-(1-0.2)(1-0.2) = "
            << 1.0 - 0.8 * 0.8 << " (edge disappeared inside the cluster)\n";
}

void BM_H1StepQuotient(benchmark::State& state) {
  const core::example98::Instance instance = core::example98::make_instance();
  const Digraph g = instance.influence.to_graph();
  Partition partition = Partition::identity(8);
  partition.merge(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quotient_graph(g, partition));
  }
}
BENCHMARK(BM_H1StepQuotient);

void BM_ProbabilisticCombine(benchmark::State& state) {
  const std::vector<double> weights{0.2, 0.2, 0.3, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(combine_probabilistic(weights));
  }
}
BENCHMARK(BM_ProbabilisticCombine);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
