// Figure 4 — "Illustrating influence in SW node linkage": p1 replicated
// three times (TMR), p2/p3 duplexed, edges replicated across copies, and
// replica pairs linked with influence-0 edges. "The total number of nodes
// of this graph is now 12." Benchmarks time replication expansion.
#include "bench_util.h"
#include "core/example98.h"
#include "mapping/swgraph.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

void print_reproduction() {
  bench::banner("Figure 4: replication-expanded SW graph");
  const core::example98::Instance instance = core::example98::make_instance();
  const SwGraph sw = SwGraph::build(instance.hierarchy, instance.influence,
                                    instance.processes);
  std::cout << "nodes (" << sw.node_count() << "):\n  ";
  for (const SwNode& node : sw.nodes()) std::cout << node.name << ' ';
  std::cout << "\n\nreplica links (influence 0):\n";
  for (const graph::Edge& e : sw.influence_graph().edges()) {
    if (e.label == "replica") {
      std::cout << "  " << sw.influence_graph().name(e.from) << " -- "
                << sw.influence_graph().name(e.to) << "  0\n";
    }
  }
  std::size_t influence_edges = 0;
  for (const graph::Edge& e : sw.influence_graph().edges()) {
    if (e.label != "replica") ++influence_edges;
  }
  std::cout << "\nreplicated influence edges: " << influence_edges
            << " (from the 12 original Fig. 3 edges)\n";
}

void BM_ReplicationExpansion(benchmark::State& state) {
  const core::example98::Instance instance = core::example98::make_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SwGraph::build(
        instance.hierarchy, instance.influence, instance.processes));
  }
}
BENCHMARK(BM_ReplicationExpansion);

void BM_ExpansionScales(benchmark::State& state) {
  // N processes in a ring, all TMR: 3N nodes, 9 edges per original edge.
  const int n = static_cast<int>(state.range(0));
  core::FcmHierarchy hierarchy;
  core::InfluenceModel influence;
  std::vector<FcmId> processes;
  for (int i = 0; i < n; ++i) {
    core::Attributes attrs;
    attrs.criticality = 5;
    attrs.replication = 3;
    const FcmId id = hierarchy.create("p" + std::to_string(i),
                                      core::Level::kProcess, attrs);
    processes.push_back(id);
    influence.add_member(id, hierarchy.get(id).name);
  }
  for (int i = 0; i < n; ++i) {
    influence.set_direct(processes[static_cast<std::size_t>(i)],
                         processes[static_cast<std::size_t>((i + 1) % n)],
                         Probability(0.3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SwGraph::build(hierarchy, influence, processes));
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
}
BENCHMARK(BM_ExpansionScales)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
