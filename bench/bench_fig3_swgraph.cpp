// Figure 3 — "Initial SW nodes": the eight processes p1..p8 linked by
// twelve unidirectional influence edges ("influences have been randomly
// generated for this example"; our reconstruction preserves the legible
// weight multiset {0.5,0.7,0.1,0.2,0.2,0.7,0.3,0.6,0.2,0.3,0.1,0.2} and the
// H1 merge order). Benchmarks time Eq. 1/Eq. 2 influence evaluation.
#include "bench_util.h"
#include "core/example98.h"
#include "core/influence.h"

namespace {

using namespace fcm;
using namespace fcm::core;

void print_reproduction() {
  bench::banner("Figure 3: initial SW influence graph (8 processes)");
  const example98::Instance instance = example98::make_instance();
  const graph::Digraph g = instance.influence.to_graph();
  bench::print_edges(g);
  std::cout << "\nmutual influences (pairing key of H1):\n";
  for (int i = 1; i <= 8; ++i) {
    for (int j = i + 1; j <= 8; ++j) {
      const double m = instance.influence.mutual_influence(
          instance.process(i), instance.process(j));
      if (m > 0.0) {
        std::cout << "  p" << i << " <-> p" << j << "  " << m << '\n';
      }
    }
  }
}

void BM_InfluenceLookup(benchmark::State& state) {
  const example98::Instance instance = example98::make_instance();
  const FcmId p1 = instance.process(1);
  const FcmId p2 = instance.process(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.influence.influence(p1, p2));
  }
}
BENCHMARK(BM_InfluenceLookup);

void BM_EquationTwoFactors(benchmark::State& state) {
  // Influence combination over a growing factor list (Eq. 2).
  const auto n = static_cast<std::size_t>(state.range(0));
  InfluenceModel model;
  const FcmId a(0), b(1);
  model.add_member(a, "a");
  model.add_member(b, "b");
  for (std::size_t i = 0; i < n; ++i) {
    InfluenceFactor factor;
    factor.kind = FactorKind::kSharedMemory;
    factor.occurrence = Probability(0.1);
    factor.transmission = Probability(0.5);
    factor.effect = Probability(0.3);
    model.add_factor(a, b, factor);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.influence(a, b));
  }
}
BENCHMARK(BM_EquationTwoFactors)->Arg(1)->Arg(4)->Arg(16);

void BM_ToMatrix(benchmark::State& state) {
  const example98::Instance instance = example98::make_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.influence.to_matrix());
  }
}
BENCHMARK(BM_ToMatrix);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
