// Adversarial fault-schedule search and rare-event survival estimation on
// the §6 example mapping. The reproduction prints the static grid minimum
// versus the adversary's certified worst case (the adversary must find a
// schedule strictly below the grid — on example98 it crashes the two hosts
// carrying p1's TMR majority, something no single-event grid scenario
// does), then the importance-sampling estimate for a rare mission failure
// against its closed-form compositional bounds, checks byte-identity of
// both reports across worker thread counts, and records the headline
// figures to BENCH_adversary.json. The microbenchmarks time the adversary
// search, one memoized re-evaluation, and the tilted estimator at 1 and 4
// threads.
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "mapping/planner.h"
#include "resilience/adversary.h"
#include "resilience/rare_event.h"

namespace {

using namespace fcm;

struct Setup {
  core::example98::Instance instance;
  mapping::HwGraph hw;
  mapping::SwGraph sw;
  mapping::Plan plan;
};

Setup make_setup() {
  Setup setup;
  setup.instance = core::example98::make_instance();
  setup.hw = mapping::HwGraph::complete(core::example98::kHwNodes);
  mapping::IntegrationPlanner planner(
      setup.instance.hierarchy, setup.instance.influence,
      setup.instance.processes, setup.hw);
  setup.plan = planner.best_plan();
  setup.sw = planner.sw_graph();
  return setup;
}

resilience::AdversaryResult adversary(const Setup& setup,
                                      std::uint32_t threads) {
  resilience::AdversaryOptions options;
  options.campaign.threads = threads;
  return resilience::find_worst_case(setup.sw, setup.plan.clustering.partition,
                                     setup.plan.assignment, setup.hw, 2026,
                                     options);
}

resilience::RareEventEstimate rare(const Setup& setup, std::uint32_t threads,
                                   double q) {
  resilience::RareEventOptions options;
  options.hw_failure = Probability(q);
  options.threads = threads;
  return resilience::estimate_rare_event(setup.sw, setup.plan.clustering,
                                         setup.plan.assignment, setup.hw,
                                         options, 2026);
}

void print_reproduction() {
  bench::banner("Adversarial worst case vs the static grid (§6 mapping)");
  const Setup setup = make_setup();

  const auto t0 = std::chrono::steady_clock::now();
  const resilience::AdversaryResult worst = adversary(setup, 1);
  const auto t1 = std::chrono::steady_clock::now();
  const double adversary_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  const bool adversary_identical =
      resilience::to_json(worst) == resilience::to_json(adversary(setup, 4));

  TextTable table({"source", "scenario", "critical survival"});
  table.add_row({"static grid min", worst.grid_min_name,
                 fmt(worst.grid_min_critical_survival, 4)});
  table.add_row({"adversary", worst.worst.name,
                 fmt(worst.worst_critical_survival, 4)});
  std::cout << table.render();
  std::cout << "beats grid: " << (worst.beats_grid ? "yes" : "NO") << "  ("
            << worst.evaluations << " evaluations, " << worst.cache_hits
            << " cache hits, " << fmt(adversary_seconds, 3) << "s)\n"
            << "worst-case events:\n";
  for (const resilience::ScenarioEvent& event : worst.worst.events) {
    std::cout << "  " << resilience::to_string(event.kind);
    if (event.kind == resilience::ScenarioEventKind::kProcessorCrash) {
      std::cout << " hw" << event.hw_node.value();
    } else {
      std::cout << " task " << setup.sw.node(event.task).name;
    }
    std::cout << '\n';
  }
  std::cout << "bounds on the worst case: [" << fmt(worst.bound_lower, 4)
            << ", " << fmt(worst.bound_upper, 4) << "]  consistent: "
            << (worst.bound_consistent ? "yes" : "NO") << '\n';

  bench::banner("Rare-event survival via importance sampling");
  const auto t2 = std::chrono::steady_clock::now();
  const resilience::RareEventEstimate estimate = rare(setup, 1, 0.01);
  const auto t3 = std::chrono::steady_clock::now();
  const double rare_seconds = std::chrono::duration<double>(t3 - t2).count();
  const bool rare_identical =
      resilience::to_json(estimate) == resilience::to_json(rare(setup, 4, 0.01));

  std::cout << "q=0.01, " << estimate.trials << " tilted trials at tilt "
            << fmt(estimate.tilt_used, 3) << " (" << estimate.levels_used
            << " pilot levels): survival " << fmt(estimate.survival, 6)
            << " +- " << fmt(estimate.std_error, 6) << ", ESS "
            << fmt(estimate.effective_samples, 0) << ", " << estimate.hits
            << " hits, " << fmt(rare_seconds, 3) << "s\n"
            << "compositional bounds: [" << fmt(estimate.bound_lower, 6)
            << ", " << fmt(estimate.bound_upper, 6) << "]  consistent: "
            << (estimate.bound_consistent ? "yes" : "NO") << '\n';

  std::ofstream json("BENCH_adversary.json");
  json << "{\n"
       << "  \"bench\": \"adversary\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"adversary_seconds\": " << adversary_seconds << ",\n"
       << "  \"rare_event_seconds\": " << rare_seconds << ",\n"
       << "  \"adversary_below_grid_min\": "
       << (worst.beats_grid ? "true" : "false") << ",\n"
       << "  \"adversary_identical_across_threads\": "
       << (adversary_identical ? "true" : "false") << ",\n"
       << "  \"rare_event_identical_across_threads\": "
       << (rare_identical ? "true" : "false") << ",\n"
       << "  \"bound_consistent\": "
       << (worst.bound_consistent && estimate.bound_consistent ? "true"
                                                               : "false")
       << ",\n"
       << "  \"adversary\": " << resilience::to_json(worst) << ",\n"
       << "  \"rare_event\": " << resilience::to_json(estimate) << "\n}\n";
  std::cout << "(record written to BENCH_adversary.json)\n";
}

void BM_AdversarySearch(benchmark::State& state) {
  const Setup setup = make_setup();
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(adversary(setup, threads));
  }
}
BENCHMARK(BM_AdversarySearch)->Arg(1)->Arg(4);

void BM_AdversaryEvaluation(benchmark::State& state) {
  // One candidate score: a single-scenario campaign at the search's trial
  // budget — the unit of work the memo saves on every cache hit.
  const Setup setup = make_setup();
  const std::vector<resilience::Scenario> grid = resilience::standard_grid(
      setup.sw, setup.plan.clustering.partition, setup.plan.assignment,
      setup.hw);
  resilience::CampaignOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resilience::run_campaign(
        setup.sw, setup.plan.clustering.partition, setup.plan.assignment,
        setup.hw, {grid.front()}, 2026, options));
  }
}
BENCHMARK(BM_AdversaryEvaluation);

void BM_RareEvent(benchmark::State& state) {
  const Setup setup = make_setup();
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rare(setup, threads, 0.01));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_RareEvent)->Arg(1)->Arg(4);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
