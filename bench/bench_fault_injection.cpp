// Ablation — empirical vs analytic influence: the paper's p1·p2·p3
// decomposition (Eq. 1) measured by fault-injection campaigns on the
// simulated RT platform, swept over transmission (p2) and manifestation
// (p3) probabilities, against the analytic product.
#include "bench_util.h"
#include "common/table.h"
#include "sim/influence_estimator.h"

namespace {

using namespace fcm;
using namespace fcm::sim;

PlatformSpec pipeline(double p2, double p3) {
  PlatformSpec spec;
  const ProcessorId cpu = spec.add_processor("cpu0");
  const RegionId shared = spec.add_region("shared", Probability(p2));

  TaskSpec producer;
  producer.name = "producer";
  producer.processor = cpu;
  producer.period = Duration::millis(10);
  producer.deadline = Duration::millis(10);
  producer.cost = Duration::millis(1);
  producer.writes = {shared};
  spec.add_task(producer);

  TaskSpec consumer;
  consumer.name = "consumer";
  consumer.processor = cpu;
  consumer.period = Duration::millis(10);
  consumer.deadline = Duration::millis(10);
  consumer.cost = Duration::millis(1);
  consumer.offset = Duration::millis(5);
  consumer.reads = {shared};
  consumer.manifestation = Probability(p3);
  spec.add_task(consumer);
  return spec;
}

void print_reproduction() {
  bench::banner(
      "Fault injection: empirical influence vs analytic p2*p3 (Eq. 1)");
  TextTable table({"p2", "p3", "analytic p2*p3", "measured influence",
                   "measured p3|transmit"});
  for (const double p2 : {0.25, 0.5, 0.75, 1.0}) {
    for (const double p3 : {0.25, 0.5, 1.0}) {
      InfluenceEstimator estimator(pipeline(p2, p3), 1234);
      EstimatorOptions options;
      options.trials = 400;
      const auto estimates = estimator.estimate_from(0, options);
      table.add_row({fmt(p2, 2), fmt(p3, 2), fmt(p2 * p3),
                     fmt(estimates[1].influence()),
                     fmt(estimates[1].manifestation_given_transmission())});
    }
  }
  std::cout << table.render();
  std::cout << "\n(measured influence tracks p2*p3; it sits slightly above "
               "the\n single-shot product because the tainted region can be "
               "consumed once\n before the clean overwrite)\n";
}

void BM_SingleTrial(benchmark::State& state) {
  const PlatformSpec spec = pipeline(0.5, 0.5);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Platform platform(spec, seed++);
    FaultInjection injection;
    injection.target = 0;
    injection.activation = 2;
    platform.inject(injection);
    benchmark::DoNotOptimize(platform.run(Duration::millis(200)));
  }
}
BENCHMARK(BM_SingleTrial);

void BM_Campaign(benchmark::State& state) {
  const PlatformSpec spec = pipeline(0.5, 0.5);
  const auto trials = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    InfluenceEstimator estimator(spec, 99);
    EstimatorOptions options;
    options.trials = trials;
    benchmark::DoNotOptimize(estimator.estimate_from(0, options));
  }
  state.SetItemsProcessed(state.iterations() * trials);
}
BENCHMARK(BM_Campaign)->Arg(10)->Arg(100);

void BM_SimulatorThroughput(benchmark::State& state) {
  // Raw event throughput of the DES engine on a fault-free pipeline.
  const PlatformSpec spec = pipeline(1.0, 1.0);
  std::uint64_t events = 0;
  for (auto _ : state) {
    Platform platform(spec, 3);
    const SimReport report = platform.run(Duration::seconds(1));
    events += report.events_dispatched;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
