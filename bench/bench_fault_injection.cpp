// Resilience — the fault-injection campaign engine and the graceful-
// degradation replanner, exercised on the §6 example system. The
// reproduction prints the per-scenario survival table (which criticality
// levels survive which fault loads, and what the replanner sheds), checks
// that the campaign report is byte-identical across worker thread counts,
// and records the headline record to BENCH_resilience.json. The
// microbenchmarks time one campaign trial, the full campaign at 1 and 4
// threads, and one replanning episode.
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "mapping/planner.h"
#include "mapping/replanner.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "resilience/campaign.h"

namespace {

using namespace fcm;

struct Setup {
  core::example98::Instance instance;
  mapping::HwGraph hw;
  mapping::SwGraph sw;
  mapping::Plan plan;
  std::vector<resilience::Scenario> grid;
};

Setup make_setup() {
  Setup setup;
  setup.instance = core::example98::make_instance();
  setup.hw = mapping::HwGraph::complete(core::example98::kHwNodes);
  mapping::IntegrationPlanner planner(
      setup.instance.hierarchy, setup.instance.influence,
      setup.instance.processes, setup.hw);
  setup.plan = planner.best_plan();
  setup.sw = planner.sw_graph();
  setup.grid = resilience::standard_grid(
      setup.sw, setup.plan.clustering.partition, setup.plan.assignment,
      setup.hw);
  return setup;
}

resilience::ResilienceReport run(const Setup& setup, std::uint32_t threads,
                                 std::uint32_t trials = 96) {
  resilience::CampaignOptions options;
  options.trials = trials;
  options.threads = threads;
  return resilience::run_campaign(
      setup.sw, setup.plan.clustering.partition, setup.plan.assignment,
      setup.hw, setup.grid, 2026, options);
}

void print_reproduction() {
  bench::banner(
      "Fault-scenario campaign on the §6 mapping (96 trials/scenario)");
  const Setup setup = make_setup();

  const auto t0 = std::chrono::steady_clock::now();
  const resilience::ResilienceReport report = run(setup, 1);
  const auto t1 = std::chrono::steady_clock::now();
  const resilience::ResilienceReport parallel = run(setup, 4);
  const auto t2 = std::chrono::steady_clock::now();
  const double seconds_1 = std::chrono::duration<double>(t1 - t0).count();
  const double seconds_4 = std::chrono::duration<double>(t2 - t1).count();
  const bool identical =
      resilience::to_json(report) == resilience::to_json(parallel);

  TextTable table({"scenario", "system", "critical", "recovered/attempted",
                   "replan", "shed"});
  for (const resilience::ScenarioResult& s : report.scenarios) {
    std::string replan = "-";
    if (s.replan.attempted) {
      replan = s.replan.feasible
                   ? "ok(" + std::to_string(s.replan.attempts) + ")"
                   : "infeasible";
    }
    table.add_row({s.name, fmt(s.system_survival, 3),
                   fmt(s.critical_survival, 3),
                   std::to_string(s.recoveries_succeeded) + "/" +
                       std::to_string(s.recoveries_attempted),
                   replan, std::to_string(s.replan.shed.size())});
  }
  std::cout << table.render();
  std::cout << "worst critical survival: "
            << fmt(report.worst_critical_survival(), 3) << '\n'
            << "report identical for threads 1 vs 4: "
            << (identical ? "yes" : "NO") << '\n';

  // One instrumented pass so the obs registry snapshot rides along in the
  // JSON record (counter totals are thread-invariant by construction).
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  (void)run(setup, 4);
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::global().snapshot();
  obs::set_enabled(false);

  std::ofstream json("BENCH_resilience.json");
  json << "{\n"
       << "  \"bench\": \"resilience_campaign\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"scenarios\": " << report.scenarios.size() << ",\n"
       << "  \"trials_per_scenario\": " << report.trials_per_scenario
       << ",\n"
       << "  \"campaign_seconds_threads1\": " << seconds_1 << ",\n"
       << "  \"campaign_seconds_threads4\": " << seconds_4 << ",\n"
       << "  \"worst_critical_survival\": "
       << report.worst_critical_survival() << ",\n"
       << "  \"report_identical_across_threads\": "
       << (identical ? "true" : "false") << ",\n"
       << "  \"metrics\": " << obs::metrics_json(metrics) << ",\n"
       << "  \"report\": " << resilience::to_json(report) << "\n}\n";
  std::cout << "(campaign record written to BENCH_resilience.json)\n";
}

void BM_CampaignTrial(benchmark::State& state) {
  // One scenario, one trial: the per-trial cost of compile + simulate +
  // recover that the campaign amortizes across blocks.
  const Setup setup = make_setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(setup, 1, 1));
  }
}
BENCHMARK(BM_CampaignTrial);

void BM_Campaign(benchmark::State& state) {
  const Setup setup = make_setup();
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(setup, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(setup.grid.size()) * 96);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(4);

void BM_Replan(benchmark::State& state) {
  const Setup setup = make_setup();
  const std::vector<HwNodeId> failed{HwNodeId(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::replan_after_loss(
        setup.sw, setup.plan.clustering.partition, setup.plan.assignment,
        setup.hw, failed));
  }
}
BENCHMARK(BM_Replan);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
