// Figure 6 — "Reducing SW graph to match HW resources": the full H1 run on
// the 12-node replicated graph down to the 6-node strongly connected HW
// network, with replicas landing on distinct nodes and the condensed
// influence graph printed (the figure's right-hand side).
#include "bench_util.h"
#include "core/example98.h"
#include "mapping/assignment.h"
#include "mapping/clustering.h"
#include "mapping/quality.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  SwGraph sw = SwGraph::build(instance.hierarchy, instance.influence,
                              instance.processes);
  HwGraph hw = HwGraph::complete(core::example98::kHwNodes);
};

void print_reproduction() {
  bench::banner("Figure 6: H1 reduction of the 12-node SW graph to 6 HW nodes");
  Setup setup;
  ClusteringOptions options;
  options.target_clusters = setup.hw.node_count();
  ClusterEngine engine(setup.sw, options);
  const ClusteringResult result = engine.h1_greedy();

  std::cout << "combination steps:\n";
  for (const std::string& step : result.steps) {
    std::cout << "  " << step << '\n';
  }
  std::cout << "\nmapped SW nodes per HW node:\n";
  const Assignment assignment =
      assign_by_importance(setup.sw, result, setup.hw);
  const auto names = result.cluster_names(setup.sw);
  for (std::uint32_t c = 0; c < names.size(); ++c) {
    std::cout << "  " << setup.hw.node(assignment.hw_of[c]).name << " <- {";
    for (std::size_t i = 0; i < names[c].size(); ++i) {
      if (i > 0) std::cout << ',';
      std::cout << names[c][i];
    }
    std::cout << "}\n";
  }
  std::cout << "\ncondensed influence graph:\n";
  bench::print_edges(result.quotient);
  const MappingQuality quality =
      evaluate(setup.sw, result, assignment, setup.hw);
  std::cout << '\n' << quality.report();
}

void BM_H1Greedy(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = setup.hw.node_count();
    ClusterEngine engine(setup.sw, options);
    benchmark::DoNotOptimize(engine.h1_greedy());
  }
}
BENCHMARK(BM_H1Greedy);

void BM_H1GreedyNoSchedCheck(benchmark::State& state) {
  // Isolates the graph work from the schedulability oracle.
  Setup setup;
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = setup.hw.node_count();
    options.enforce_schedulability = false;
    ClusterEngine engine(setup.sw, options);
    benchmark::DoNotOptimize(engine.h1_greedy());
  }
}
BENCHMARK(BM_H1GreedyNoSchedCheck);

void BM_QualityEvaluation(benchmark::State& state) {
  Setup setup;
  ClusteringOptions options;
  options.target_clusters = setup.hw.node_count();
  ClusterEngine engine(setup.sw, options);
  const ClusteringResult result = engine.h1_greedy();
  const Assignment assignment =
      assign_by_importance(setup.sw, result, setup.hw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate(setup.sw, result, assignment, setup.hw));
  }
}
BENCHMARK(BM_QualityEvaluation);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
