// Scalability — the paper's example has 8 processes; a real integration
// campaign (the Boeing 777 AIMS footnote) has dozens. This bench scales
// randomized systems up through 256 processes and times each planning
// phase separately: the Eq. 3 separation series (reference loop vs the
// kernel fast path), H1 clustering (full pair rescan vs the lazy-deletion
// pair heap), and assignment + quality. The headline speedups and the
// bitwise thread-identity checks are recorded to BENCH_scale.json.
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/series.h"
#include "mapping/planner.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

struct RandomSystem {
  core::FcmHierarchy hierarchy;
  core::InfluenceModel influence;
  std::vector<FcmId> processes;
};

RandomSystem make_system(std::size_t processes, std::uint64_t seed) {
  Rng rng(seed);
  RandomSystem sys;
  for (std::size_t i = 0; i < processes; ++i) {
    core::Attributes attrs;
    attrs.criticality = static_cast<core::Criticality>(rng.range(1, 10));
    attrs.replication = rng.uniform() < 0.15 ? 3
                        : rng.uniform() < 0.3 ? 2
                                              : 1;
    const std::int64_t est = rng.range(0, 50);
    const std::int64_t ct = rng.range(1, 6);
    const std::int64_t tcd = est + ct + rng.range(20, 200);
    attrs.timing = core::TimingSpec::one_shot(
        Instant::epoch() + Duration::millis(est),
        Instant::epoch() + Duration::millis(tcd), Duration::millis(ct));
    const FcmId id = sys.hierarchy.create("p" + std::to_string(i + 1),
                                          core::Level::kProcess, attrs);
    sys.influence.add_member(id, sys.hierarchy.get(id).name);
    sys.processes.push_back(id);
  }
  // Sparse influence: ~3 out-edges per process.
  for (std::size_t i = 0; i < processes; ++i) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t j = rng.below(static_cast<std::uint32_t>(processes));
      if (j == i) continue;
      if (sys.influence.influence(sys.processes[i], sys.processes[j])
              .value() > 0.0) {
        continue;
      }
      sys.influence.set_direct(sys.processes[i], sys.processes[j],
                               Probability(rng.uniform(0.05, 0.6)));
    }
  }
  return sys;
}

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Best-of-`reps` wall time (single-shot phases are noisy at small sizes).
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = seconds_of(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

graph::Matrix influence_matrix(const SwGraph& sw) {
  graph::Matrix p(sw.node_count());
  for (const graph::Edge& e : sw.influence_graph().edges()) {
    p.at(e.from, e.to) = e.weight;
  }
  return p;
}

bool bitwise_equal(const graph::Matrix& a, const graph::Matrix& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(),
                     a.size() * a.size() * sizeof(double)) == 0;
}

struct PhaseRow {
  std::size_t processes = 0;
  std::size_t sw_nodes = 0;
  double series_ref_seconds = 0.0;
  double series_fast_seconds = 0.0;
  double h1_scan_seconds = 0.0;
  double h1_heap_seconds = 0.0;
  double assign_seconds = 0.0;
  bool series_identical = false;
  bool h1_identical = false;
};

PhaseRow measure(std::size_t processes) {
  PhaseRow row;
  row.processes = processes;
  const RandomSystem sys = make_system(processes, 42);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  row.sw_nodes = sw.node_count();
  const std::size_t hw_nodes = std::max<std::size_t>(4, processes / 3);
  const int reps = processes >= 128 ? 2 : 3;

  // Phase 1: separation series. Reference loop vs the kernel fast path
  // (auto dense/sparse selection; influence graphs this sparse take the
  // CSR kernel). Identity across thread counts is part of the contract.
  const graph::Matrix p = influence_matrix(sw);
  graph::Matrix ref(0);
  row.series_ref_seconds = best_seconds(
      reps, [&] { ref = graph::power_series_sum_reference(p, 6, 1e-9); });
  graph::SeriesOptions sopts;
  sopts.epsilon = 1e-9;
  graph::Matrix fast(0);
  row.series_fast_seconds =
      best_seconds(reps, [&] { fast = graph::power_series_sum(p, sopts); });
  row.series_identical = bitwise_equal(ref, fast);
  for (const std::uint32_t threads : {4u, 8u}) {
    sopts.threads = threads;
    row.series_identical =
        row.series_identical && bitwise_equal(ref, graph::power_series_sum(p, sopts));
  }

  // Phase 2: H1 clustering, full rescan vs pair heap. Schedulability is
  // skipped so the comparison isolates the merge-selection machinery (the
  // oracle costs the same on both paths).
  ClusteringOptions copts;
  copts.target_clusters = hw_nodes;
  copts.enforce_schedulability = false;
  ClusteringResult scan_result, heap_result;
  copts.use_pair_heap = false;
  row.h1_scan_seconds = best_seconds(reps, [&] {
    ClusterEngine engine(sw, copts);
    scan_result = engine.h1_greedy();
  });
  copts.use_pair_heap = true;
  row.h1_heap_seconds = best_seconds(reps, [&] {
    ClusterEngine engine(sw, copts);
    heap_result = engine.h1_greedy();
  });
  row.h1_identical =
      scan_result.steps == heap_result.steps &&
      scan_result.partition.cluster_of == heap_result.partition.cluster_of;

  // Phase 3: assignment + quality on the heap clustering.
  row.assign_seconds = best_seconds(reps, [&] {
    const HwGraph hw = HwGraph::complete(hw_nodes);
    const Assignment assignment =
        assign_by_importance(sw, heap_result, hw);
    core::SeparationCache cache;
    QualityOptions qopts;
    qopts.separation_cache = &cache;
    benchmark::DoNotOptimize(
        evaluate(sw, heap_result, assignment, hw, qopts));
  });
  return row;
}

bool plans_identical_across_threads() {
  // The full pipeline at 64 processes: the best_plan sweep must pick the
  // same plan sequentially and with 4 workers.
  const HwGraph hw = HwGraph::complete(12);
  auto best = [&](std::uint32_t threads) {
    const RandomSystem sys = make_system(64, 7);
    PlanOptions options;
    options.sweep_threads = threads;
    IntegrationPlanner planner(sys.hierarchy, sys.influence, sys.processes,
                               hw, options);
    return planner.best_plan();
  };
  const Plan sequential = best(1);
  const Plan parallel = best(4);
  return sequential.heuristic == parallel.heuristic &&
         sequential.clustering.partition.cluster_of ==
             parallel.clustering.partition.cluster_of &&
         sequential.assignment.hw_of == parallel.assignment.hw_of &&
         sequential.quality.score() == parallel.quality.score();
}

void print_reproduction() {
  bench::banner("Per-phase planning cost, 32 -> 256 processes");
  TextTable table({"processes", "SW nodes", "series ref", "series fast",
                   "series x", "H1 scan", "H1 heap", "H1 x", "assign+qual",
                   "identical"});
  PhaseRow headline;
  std::vector<PhaseRow> rows;
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    const PhaseRow row = measure(n);
    rows.push_back(row);
    if (n == 256) headline = row;
    table.add_row({std::to_string(row.processes),
                   std::to_string(row.sw_nodes),
                   fmt(row.series_ref_seconds, 4),
                   fmt(row.series_fast_seconds, 4),
                   fmt(row.series_ref_seconds / row.series_fast_seconds, 1),
                   fmt(row.h1_scan_seconds, 4), fmt(row.h1_heap_seconds, 4),
                   fmt(row.h1_scan_seconds / row.h1_heap_seconds, 1),
                   fmt(row.assign_seconds, 4),
                   row.series_identical && row.h1_identical ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "(series fast path = auto CSR/blocked kernel of "
               "graph/series.h; identity is bitwise,\n across kernels and "
               "across 1/4/8 threads — speedups here are algorithmic, not "
               "core-count)\n";

  const bool plans_identical = plans_identical_across_threads();
  std::cout << "best_plan(64 processes): sweep_threads 1 vs 4 pick "
            << (plans_identical ? "identical" : "DIFFERENT") << " plans\n";

  // One instrumented pipeline pass: the obs registry snapshot rides along
  // in the JSON record so a perf regression can be traced to which phase
  // changed behavior (kernel selection flips, heap churn, cache misses).
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  (void)measure(64);
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::global().snapshot();
  obs::set_enabled(false);

  std::ofstream json("BENCH_scale.json");
  json << "{\n"
       << "  \"bench\": \"scale_phases\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"processes\": " << headline.processes << ",\n"
       << "  \"sw_nodes\": " << headline.sw_nodes << ",\n"
       << "  \"series_ref_seconds\": " << headline.series_ref_seconds << ",\n"
       << "  \"series_fast_seconds\": " << headline.series_fast_seconds
       << ",\n"
       << "  \"series_speedup\": "
       << headline.series_ref_seconds / headline.series_fast_seconds << ",\n"
       << "  \"h1_scan_seconds\": " << headline.h1_scan_seconds << ",\n"
       << "  \"h1_heap_seconds\": " << headline.h1_heap_seconds << ",\n"
       << "  \"h1_speedup\": "
       << headline.h1_scan_seconds / headline.h1_heap_seconds << ",\n"
       << "  \"assign_seconds\": " << headline.assign_seconds << ",\n"
       << "  \"series_bitwise_identical\": "
       << (headline.series_identical ? "true" : "false") << ",\n"
       << "  \"h1_identical\": "
       << (headline.h1_identical ? "true" : "false") << ",\n"
       << "  \"plans_identical_across_threads\": "
       << (plans_identical ? "true" : "false") << ",\n"
       << "  \"metrics\": " << obs::metrics_json(metrics) << "\n}\n";
  std::cout << "(per-phase record written to BENCH_scale.json)\n";
}

void BM_SeriesReference(benchmark::State& state) {
  const RandomSystem sys =
      make_system(static_cast<std::size_t>(state.range(0)), 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  const graph::Matrix p = influence_matrix(sw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::power_series_sum_reference(p, 6, 1e-9));
  }
}
BENCHMARK(BM_SeriesReference)->Arg(32)->Arg(64);

void BM_SeriesFast(benchmark::State& state) {
  const RandomSystem sys =
      make_system(static_cast<std::size_t>(state.range(0)), 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  const graph::Matrix p = influence_matrix(sw);
  graph::SeriesOptions options;
  options.epsilon = 1e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::power_series_sum(p, options));
  }
}
BENCHMARK(BM_SeriesFast)->Arg(32)->Arg(64)->Arg(256);

void BM_H1AtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool heap = state.range(1) != 0;
  const RandomSystem sys = make_system(n, 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = std::max<std::size_t>(4, n / 3);
    options.use_pair_heap = heap;
    ClusterEngine engine(sw, options);
    try {
      benchmark::DoNotOptimize(engine.h1_greedy());
    } catch (const fcm::FcmError&) {
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sw.node_count()));
}
BENCHMARK(BM_H1AtScale)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_SwGraphBuildAtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomSystem sys = make_system(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SwGraph::build(sys.hierarchy, sys.influence, sys.processes));
  }
}
BENCHMARK(BM_SwGraphBuildAtScale)->Arg(8)->Arg(64);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
