// Scalability — the paper's example has 8 processes; a real integration
// campaign (the Boeing 777 AIMS footnote) has dozens, and a fleet-level
// study needs thousands. This bench scales seeded synthetic systems
// (core/synthetic.h — shared with `fcm_tool plan --synthetic` and the
// serve daemon) through two regimes:
//
//   * 32–256 processes: per-phase timings of the Eq. 3 separation series
//     (reference loop vs the kernel fast path) and H1 clustering (full
//     pair rescan vs the lazy-deletion pair heap), plus the incremental
//     quotient maintenance differential — mutual-influence recomputes per
//     H1 run under delta updates vs full rebuilds;
//   * 512–4096 processes (cap via FCM_SCALE_MAX): the sparse-first
//     pipeline — CSR-direct series that never materializes the dense P,
//     hierarchical H1 (partition → cluster within parts → merge across) —
//     with per-phase wall times, allocation counts, and peak RSS.
//
// The headline speedups, the ≥10× recompute drop, and the bitwise
// thread/mode-identity checks are recorded to BENCH_scale.json.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <thread>

#include "bench_util.h"
#include "common/error.h"
#include "common/table.h"
#include "core/synthetic.h"
#include "graph/csr.h"
#include "graph/series.h"
#include "mapping/planner.h"
#include "obs/metrics.h"
#include "obs/obs.h"

FCM_BENCH_DEFINE_ALLOC_HOOKS()

namespace {

using namespace fcm;
using namespace fcm::mapping;
using core::synthetic::System;
using core::synthetic::make_system;

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Median wall time over max(reps, --repeat) passes after one warmup
/// (single-shot phases are noisy at small sizes; --repeat raises the
/// sample count for stable recorded speedups).
double phase_seconds(int reps, const std::function<void()>& fn) {
  return fcm::bench::timed_median_seconds(std::max(reps, fcm::bench::repeat()),
                                          fn);
}

graph::Matrix influence_matrix(const SwGraph& sw) {
  graph::Matrix p(sw.node_count());
  for (const graph::Edge& e : sw.influence_graph().edges()) {
    p.at(e.from, e.to) = e.weight;
  }
  return p;
}

/// CSR snapshot of the influence graph built straight from the edge list —
/// the dense n×n buffer is never allocated.
graph::CsrMatrix influence_csr(const SwGraph& sw) {
  std::vector<graph::CsrEntry> entries;
  entries.reserve(sw.influence_graph().edges().size());
  for (const graph::Edge& e : sw.influence_graph().edges()) {
    entries.push_back({e.from, e.to, e.weight});
  }
  return graph::CsrMatrix(sw.node_count(), std::move(entries));
}

bool bitwise_equal(const graph::Matrix& a, const graph::Matrix& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(),
                     a.size() * a.size() * sizeof(double)) == 0;
}

std::uint64_t counter(const obs::MetricsSnapshot& snapshot,
                      const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

struct PhaseRow {
  std::size_t processes = 0;
  std::size_t sw_nodes = 0;
  double series_ref_seconds = 0.0;
  double series_fast_seconds = 0.0;
  double h1_scan_seconds = 0.0;
  double h1_heap_seconds = 0.0;
  double assign_seconds = 0.0;
  bool series_identical = false;
  bool h1_identical = false;
};

PhaseRow measure(std::size_t processes) {
  PhaseRow row;
  row.processes = processes;
  const System sys = make_system(processes, 42);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  row.sw_nodes = sw.node_count();
  const std::size_t hw_nodes = std::max<std::size_t>(4, processes / 3);
  const int reps = processes >= 128 ? 2 : 3;

  // Phase 1: separation series. Reference loop vs the kernel fast path
  // (auto dense/sparse selection; influence graphs this sparse take the
  // CSR kernel). Identity across thread counts is part of the contract.
  const graph::Matrix p = influence_matrix(sw);
  graph::Matrix ref(0);
  row.series_ref_seconds = phase_seconds(
      reps, [&] { ref = graph::power_series_sum_reference(p, 6, 1e-9); });
  graph::SeriesOptions sopts;
  sopts.epsilon = 1e-9;
  graph::Matrix fast(0);
  row.series_fast_seconds =
      phase_seconds(reps, [&] { fast = graph::power_series_sum(p, sopts); });
  row.series_identical = bitwise_equal(ref, fast);
  for (const std::uint32_t threads : {4u, 8u}) {
    sopts.threads = threads;
    row.series_identical =
        row.series_identical && bitwise_equal(ref, graph::power_series_sum(p, sopts));
  }

  // Phase 2: H1 clustering, full rescan vs pair heap. Schedulability is
  // skipped so the comparison isolates the merge-selection machinery (the
  // oracle costs the same on both paths).
  ClusteringOptions copts;
  copts.target_clusters = hw_nodes;
  copts.enforce_schedulability = false;
  ClusteringResult scan_result, heap_result;
  copts.use_pair_heap = false;
  row.h1_scan_seconds = phase_seconds(reps, [&] {
    ClusterEngine engine(sw, copts);
    scan_result = engine.h1_greedy();
  });
  copts.use_pair_heap = true;
  row.h1_heap_seconds = phase_seconds(reps, [&] {
    ClusterEngine engine(sw, copts);
    heap_result = engine.h1_greedy();
  });
  row.h1_identical =
      scan_result.steps == heap_result.steps &&
      scan_result.partition.cluster_of == heap_result.partition.cluster_of;

  // Phase 3: assignment + quality on the heap clustering.
  row.assign_seconds = phase_seconds(reps, [&] {
    const HwGraph hw = HwGraph::complete(hw_nodes);
    const Assignment assignment =
        assign_by_importance(sw, heap_result, hw);
    core::SeparationCache cache;
    QualityOptions qopts;
    qopts.separation_cache = &cache;
    benchmark::DoNotOptimize(
        evaluate(sw, heap_result, assignment, hw, qopts));
  });
  return row;
}

// Quotient maintenance differential: one heap H1 run per mode, counting
// mutual-influence recomputes (heap pushes) via fcm::obs. Rebuild mode
// refreshes every live pair after each merge (~n recomputes per merge);
// incremental mode only touches the merged cluster's quotient neighbors.
struct QuotientStats {
  std::uint64_t recomputes_rebuild = 0;
  std::uint64_t recomputes_incremental = 0;
  std::uint64_t delta_updates = 0;
  double stale_fraction = 0.0;  // stale pops / pops on the incremental path
  bool identical = false;       // both modes produced the same clustering
};

QuotientStats measure_quotient_drop(std::size_t processes) {
  const System sys = make_system(processes, 42);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  ClusteringOptions copts;
  copts.target_clusters = std::max<std::size_t>(4, processes / 3);
  copts.enforce_schedulability = false;
  copts.use_pair_heap = true;

  ClusteringResult results[2];
  obs::MetricsSnapshot snapshots[2];
  obs::set_enabled(true);
  for (int mode = 0; mode < 2; ++mode) {
    copts.incremental_quotient = mode == 1;
    obs::MetricsRegistry::global().reset();
    ClusterEngine engine(sw, copts);
    results[mode] = engine.h1_greedy();
    snapshots[mode] = obs::MetricsRegistry::global().snapshot();
  }
  obs::set_enabled(false);
  obs::MetricsRegistry::global().reset();

  QuotientStats stats;
  stats.recomputes_rebuild = counter(snapshots[0], "h1.heap.recomputes");
  stats.recomputes_incremental = counter(snapshots[1], "h1.heap.recomputes");
  stats.delta_updates = counter(snapshots[1], "quotient_cache.delta_updates");
  const std::uint64_t pops = counter(snapshots[1], "h1.heap.pops");
  stats.stale_fraction =
      pops == 0 ? 0.0
                : static_cast<double>(counter(snapshots[1],
                                              "h1.heap.stale_pops")) /
                      static_cast<double>(pops);
  stats.identical =
      results[0].steps == results[1].steps &&
      results[0].partition.cluster_of == results[1].partition.cluster_of;
  return stats;
}

// One 512+-process run through the sparse-first pipeline, with per-phase
// wall time and allocation counts plus the process peak RSS after the row.
struct ScaleRow {
  std::size_t processes = 0;
  std::size_t sw_nodes = 0;
  std::size_t clusters = 0;
  double build_seconds = 0.0;
  double series_seconds = 0.0;
  double cluster_seconds = 0.0;
  double h1_flat_seconds = 0.0;  // flat heap H1, only run up to 1024
  double assign_seconds = 0.0;
  std::uint64_t build_allocs = 0;
  std::uint64_t series_allocs = 0;
  std::uint64_t cluster_allocs = 0;
  std::uint64_t row_alloc_mb = 0;   // bytes requested across the whole row
  std::uint64_t peak_rss_mb = 0;
  bool series_identical = true;   // CSR-direct vs dense, checked up to 1024
  bool cluster_identical = false;  // hierarchical H1, 1 vs 4 threads
};

ScaleRow measure_scale(std::size_t processes) {
  auto& alloc = fcm::bench::alloc_counters();
  const std::uint64_t allocs0 = alloc.allocations.load();
  const std::uint64_t bytes0 = alloc.bytes.load();
  auto allocs_since = [&](std::uint64_t from) {
    return alloc.allocations.load() - from;
  };

  ScaleRow row;
  row.processes = processes;
  const System sys = make_system(processes, 42);

  std::uint64_t mark = alloc.allocations.load();
  std::optional<SwGraph> sw;
  row.build_seconds = seconds_of([&] {
    sw.emplace(SwGraph::build(sys.hierarchy, sys.influence, sys.processes));
  });
  row.build_allocs = allocs_since(mark);
  row.sw_nodes = sw->node_count();

  // Series phase, CSR-direct: the sparse P is assembled straight from the
  // influence edge list and the dense P never exists. Up to 1024 processes
  // the dense-input path is also run and must agree bitwise.
  graph::SeriesOptions sopts;
  sopts.epsilon = 1e-9;
  mark = alloc.allocations.load();
  graph::Matrix separation(0);
  row.series_seconds = seconds_of([&] {
    const graph::CsrMatrix csr = influence_csr(*sw);
    separation = graph::power_series_sum(csr, sopts);
  });
  row.series_allocs = allocs_since(mark);
  if (processes <= 1024) {
    row.series_identical = bitwise_equal(
        separation, graph::power_series_sum(influence_matrix(*sw), sopts));
  }

  // Clustering phase: hierarchical H1 (partition via min-cut/BFS, H1
  // within parts, merge across). Bitwise thread-identity is asserted by
  // re-running with 4 workers.
  ClusteringOptions copts;
  copts.target_clusters = std::max<std::size_t>(4, processes / 3);
  copts.enforce_schedulability = false;
  copts.use_pair_heap = true;
  copts.log_steps = false;
  copts.threads = 1;
  ClusteringResult hier;
  mark = alloc.allocations.load();
  row.cluster_seconds = seconds_of([&] {
    ClusterEngine engine(*sw, copts);
    hier = engine.h1_hierarchical();
  });
  row.cluster_allocs = allocs_since(mark);
  row.clusters = hier.partition.cluster_count;
  {
    copts.threads = 4;
    ClusterEngine engine(*sw, copts);
    const ClusteringResult again = engine.h1_hierarchical();
    row.cluster_identical =
        hier.partition.cluster_of == again.partition.cluster_of &&
        hier.steps == again.steps;
    copts.threads = 1;
  }

  // Flat heap H1 for scale comparison; above 1024 its all-pairs seeding
  // and merge loop dominate the whole bench, so it is skipped there.
  if (processes <= 1024) {
    row.h1_flat_seconds = seconds_of([&] {
      ClusterEngine engine(*sw, copts);
      benchmark::DoNotOptimize(engine.h1_greedy());
    });
  }

  row.assign_seconds = seconds_of([&] {
    const HwGraph hw = HwGraph::complete(copts.target_clusters);
    const Assignment assignment = assign_by_importance(*sw, hier, hw);
    core::SeparationCache cache;
    QualityOptions qopts;
    qopts.separation_cache = &cache;
    benchmark::DoNotOptimize(evaluate(*sw, hier, assignment, hw, qopts));
  });

  row.row_alloc_mb = (alloc.bytes.load() - bytes0) >> 20;
  row.peak_rss_mb = fcm::bench::peak_rss_bytes() >> 20;
  (void)allocs0;
  return row;
}

bool plans_identical_across_threads() {
  // The full pipeline at 64 processes: the best_plan sweep must pick the
  // same plan sequentially and with 4 workers.
  const HwGraph hw = HwGraph::complete(12);
  auto best = [&](std::uint32_t threads) {
    const System sys = make_system(64, 7);
    PlanOptions options;
    options.sweep_threads = threads;
    IntegrationPlanner planner(sys.hierarchy, sys.influence, sys.processes,
                               hw, options);
    return planner.best_plan();
  };
  const Plan sequential = best(1);
  const Plan parallel = best(4);
  return sequential.heuristic == parallel.heuristic &&
         sequential.clustering.partition.cluster_of ==
             parallel.clustering.partition.cluster_of &&
         sequential.assignment.hw_of == parallel.assignment.hw_of &&
         sequential.quality.score() == parallel.quality.score();
}

std::size_t scale_cap() {
  const char* env = std::getenv("FCM_SCALE_MAX");
  if (env == nullptr || *env == '\0') return 4096;
  const unsigned long value = std::strtoul(env, nullptr, 10);
  return value == 0 ? 4096 : static_cast<std::size_t>(value);
}

void print_reproduction() {
  bench::banner("Per-phase planning cost, 32 -> 256 processes");
  TextTable table({"processes", "SW nodes", "series ref", "series fast",
                   "series x", "H1 scan", "H1 heap", "H1 x", "assign+qual",
                   "identical"});
  PhaseRow headline;
  std::vector<PhaseRow> rows;
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    const PhaseRow row = measure(n);
    rows.push_back(row);
    if (n == 256) headline = row;
    table.add_row({std::to_string(row.processes),
                   std::to_string(row.sw_nodes),
                   fmt(row.series_ref_seconds, 4),
                   fmt(row.series_fast_seconds, 4),
                   fmt(row.series_ref_seconds / row.series_fast_seconds, 1),
                   fmt(row.h1_scan_seconds, 4), fmt(row.h1_heap_seconds, 4),
                   fmt(row.h1_scan_seconds / row.h1_heap_seconds, 1),
                   fmt(row.assign_seconds, 4),
                   row.series_identical && row.h1_identical ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "(series fast path = auto CSR/blocked kernel of "
               "graph/series.h; identity is bitwise,\n across kernels and "
               "across 1/4/8 threads — speedups here are algorithmic, not "
               "core-count)\n";

  bench::banner("Quotient maintenance: delta updates vs full rebuilds");
  const QuotientStats qstats = measure_quotient_drop(256);
  const double drop =
      qstats.recomputes_incremental == 0
          ? 0.0
          : static_cast<double>(qstats.recomputes_rebuild) /
                static_cast<double>(qstats.recomputes_incremental);
  std::cout << "H1 at 256 processes, mutual-influence recomputes: rebuild="
            << qstats.recomputes_rebuild
            << " incremental=" << qstats.recomputes_incremental << " ("
            << fmt(drop, 1) << "x fewer), stale-pop fraction "
            << fmt(qstats.stale_fraction, 3) << ", clusterings "
            << (qstats.identical ? "identical" : "DIFFERENT") << '\n';

  const std::size_t cap = scale_cap();
  std::vector<ScaleRow> scale_rows;
  bench::banner("Sparse-first pipeline, 512 -> " + std::to_string(cap) +
                " processes (FCM_SCALE_MAX)");
  TextTable scale_table({"processes", "SW nodes", "clusters", "build",
                         "series CSR", "H1 hier", "H1 flat", "assign+qual",
                         "alloc MB", "peak RSS MB", "identical"});
  for (const std::size_t n : {512u, 1024u, 4096u}) {
    if (n > cap) continue;
    const ScaleRow row = measure_scale(n);
    scale_rows.push_back(row);
    scale_table.add_row(
        {std::to_string(row.processes), std::to_string(row.sw_nodes),
         std::to_string(row.clusters), fmt(row.build_seconds, 3),
         fmt(row.series_seconds, 3), fmt(row.cluster_seconds, 3),
         row.h1_flat_seconds > 0.0 ? fmt(row.h1_flat_seconds, 3) : "-",
         fmt(row.assign_seconds, 3), std::to_string(row.row_alloc_mb),
         std::to_string(row.peak_rss_mb),
         row.series_identical && row.cluster_identical ? "yes" : "NO"});
  }
  std::cout << scale_table.render();
  std::cout << "(series CSR = CSR-direct evaluation, dense P never built — "
               "bitwise-checked against\n the dense path up to 1024; H1 "
               "hier = hierarchical H1, bitwise-identical for 1 vs\n 4 "
               "workers; H1 flat skipped above 1024)\n";

  const bool plans_identical = plans_identical_across_threads();
  std::cout << "best_plan(64 processes): sweep_threads 1 vs 4 pick "
            << (plans_identical ? "identical" : "DIFFERENT") << " plans\n";

  // One instrumented pipeline pass: the obs registry snapshot rides along
  // in the JSON record so a perf regression can be traced to which phase
  // changed behavior (kernel selections flips, heap churn, cache misses).
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  (void)measure(64);
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::global().snapshot();
  obs::set_enabled(false);

  std::ofstream json("BENCH_scale.json");
  json << "{\n"
       << "  \"bench\": \"scale_phases\",\n"
       << "  \"repeat\": " << bench::repeat() << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"processes\": " << headline.processes << ",\n"
       << "  \"sw_nodes\": " << headline.sw_nodes << ",\n"
       << "  \"series_ref_seconds\": " << headline.series_ref_seconds << ",\n"
       << "  \"series_fast_seconds\": " << headline.series_fast_seconds
       << ",\n"
       << "  \"series_speedup\": "
       << headline.series_ref_seconds / headline.series_fast_seconds << ",\n"
       << "  \"h1_scan_seconds\": " << headline.h1_scan_seconds << ",\n"
       << "  \"h1_heap_seconds\": " << headline.h1_heap_seconds << ",\n"
       << "  \"h1_speedup\": "
       << headline.h1_scan_seconds / headline.h1_heap_seconds << ",\n"
       << "  \"assign_seconds\": " << headline.assign_seconds << ",\n"
       << "  \"series_bitwise_identical\": "
       << (headline.series_identical ? "true" : "false") << ",\n"
       << "  \"h1_identical\": "
       << (headline.h1_identical ? "true" : "false") << ",\n"
       << "  \"recomputes_rebuild\": " << qstats.recomputes_rebuild << ",\n"
       << "  \"recomputes_incremental\": " << qstats.recomputes_incremental
       << ",\n"
       << "  \"recompute_drop_x\": " << drop << ",\n"
       << "  \"quotient_delta_updates\": " << qstats.delta_updates << ",\n"
       << "  \"pair_heap_stale_fraction\": " << qstats.stale_fraction
       << ",\n"
       << "  \"quotient_modes_identical\": "
       << (qstats.identical ? "true" : "false") << ",\n"
       << "  \"max_processes\": "
       << (scale_rows.empty() ? headline.processes
                              : scale_rows.back().processes)
       << ",\n"
       << "  \"scale_rows\": [";
  for (std::size_t i = 0; i < scale_rows.size(); ++i) {
    const ScaleRow& row = scale_rows[i];
    json << (i == 0 ? "" : ",") << "\n    {\"processes\": " << row.processes
         << ", \"sw_nodes\": " << row.sw_nodes
         << ", \"clusters\": " << row.clusters
         << ", \"build_seconds\": " << row.build_seconds
         << ", \"series_seconds\": " << row.series_seconds
         << ", \"cluster_seconds\": " << row.cluster_seconds
         << ", \"h1_flat_seconds\": " << row.h1_flat_seconds
         << ", \"assign_seconds\": " << row.assign_seconds
         << ", \"build_allocs\": " << row.build_allocs
         << ", \"series_allocs\": " << row.series_allocs
         << ", \"cluster_allocs\": " << row.cluster_allocs
         << ", \"alloc_mb\": " << row.row_alloc_mb
         << ", \"peak_rss_mb\": " << row.peak_rss_mb
         << ", \"series_identical\": "
         << (row.series_identical ? "true" : "false")
         << ", \"cluster_thread_identical\": "
         << (row.cluster_identical ? "true" : "false") << "}";
  }
  json << (scale_rows.empty() ? "" : "\n  ") << "],\n"
       << "  \"plans_identical_across_threads\": "
       << (plans_identical ? "true" : "false") << ",\n"
       << "  \"metrics\": " << obs::metrics_json(metrics) << "\n}\n";
  std::cout << "(per-phase record written to BENCH_scale.json)\n";
}

void BM_SeriesReference(benchmark::State& state) {
  const System sys = make_system(static_cast<std::size_t>(state.range(0)), 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  const graph::Matrix p = influence_matrix(sw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::power_series_sum_reference(p, 6, 1e-9));
  }
}
BENCHMARK(BM_SeriesReference)->Arg(32)->Arg(64);

void BM_SeriesFast(benchmark::State& state) {
  const System sys = make_system(static_cast<std::size_t>(state.range(0)), 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  const graph::Matrix p = influence_matrix(sw);
  graph::SeriesOptions options;
  options.epsilon = 1e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::power_series_sum(p, options));
  }
}
BENCHMARK(BM_SeriesFast)->Arg(32)->Arg(64)->Arg(256);

void BM_SeriesCsrDirect(benchmark::State& state) {
  const System sys = make_system(static_cast<std::size_t>(state.range(0)), 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  graph::SeriesOptions options;
  options.epsilon = 1e-9;
  for (auto _ : state) {
    const graph::CsrMatrix csr = influence_csr(sw);
    benchmark::DoNotOptimize(graph::power_series_sum(csr, options));
  }
}
BENCHMARK(BM_SeriesCsrDirect)->Arg(64)->Arg(256);

void BM_H1AtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool heap = state.range(1) != 0;
  const System sys = make_system(n, 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = std::max<std::size_t>(4, n / 3);
    options.use_pair_heap = heap;
    ClusterEngine engine(sw, options);
    try {
      benchmark::DoNotOptimize(engine.h1_greedy());
    } catch (const fcm::FcmError&) {
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sw.node_count()));
}
BENCHMARK(BM_H1AtScale)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_H1Hierarchical(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const System sys = make_system(n, 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = std::max<std::size_t>(4, n / 3);
    options.enforce_schedulability = false;
    options.log_steps = false;
    options.threads = 1;
    ClusterEngine engine(sw, options);
    try {
      benchmark::DoNotOptimize(engine.h1_hierarchical());
    } catch (const fcm::FcmError&) {
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sw.node_count()));
}
BENCHMARK(BM_H1Hierarchical)->Arg(64)->Arg(256);

void BM_SwGraphBuildAtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const System sys = make_system(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SwGraph::build(sys.hierarchy, sys.influence, sys.processes));
  }
}
BENCHMARK(BM_SwGraphBuildAtScale)->Arg(8)->Arg(64);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
