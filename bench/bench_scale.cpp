// Scalability — the paper's example has 8 processes; a real integration
// campaign (the Boeing 777 AIMS footnote) has dozens. This bench scales
// randomized systems up through 64 processes / 24 HW nodes and times the
// full planning pipeline, reporting where each phase's cost goes.
#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/error.h"
#include "mapping/planner.h"

namespace {

using namespace fcm;
using namespace fcm::mapping;

struct RandomSystem {
  core::FcmHierarchy hierarchy;
  core::InfluenceModel influence;
  std::vector<FcmId> processes;
};

RandomSystem make_system(std::size_t processes, std::uint64_t seed) {
  Rng rng(seed);
  RandomSystem sys;
  for (std::size_t i = 0; i < processes; ++i) {
    core::Attributes attrs;
    attrs.criticality = static_cast<core::Criticality>(rng.range(1, 10));
    attrs.replication = rng.uniform() < 0.15 ? 3
                        : rng.uniform() < 0.3 ? 2
                                              : 1;
    const std::int64_t est = rng.range(0, 50);
    const std::int64_t ct = rng.range(1, 6);
    const std::int64_t tcd = est + ct + rng.range(20, 200);
    attrs.timing = core::TimingSpec::one_shot(
        Instant::epoch() + Duration::millis(est),
        Instant::epoch() + Duration::millis(tcd), Duration::millis(ct));
    const FcmId id = sys.hierarchy.create("p" + std::to_string(i + 1),
                                          core::Level::kProcess, attrs);
    sys.influence.add_member(id, sys.hierarchy.get(id).name);
    sys.processes.push_back(id);
  }
  // Sparse influence: ~3 out-edges per process.
  for (std::size_t i = 0; i < processes; ++i) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t j = rng.below(static_cast<std::uint32_t>(processes));
      if (j == i) continue;
      if (sys.influence.influence(sys.processes[i], sys.processes[j])
              .value() > 0.0) {
        continue;
      }
      sys.influence.set_direct(sys.processes[i], sys.processes[j],
                               Probability(rng.uniform(0.05, 0.6)));
    }
  }
  return sys;
}

void print_reproduction() {
  bench::banner("Planner scalability on randomized systems");
  TextTable table({"processes", "SW nodes", "HW nodes", "heuristic",
                   "feasible", "cross-infl", "oracle analyses"});
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    const RandomSystem sys = make_system(n, 42);
    const SwGraph sw =
        SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
    const std::size_t hw_nodes = std::max<std::size_t>(4, n / 3);
    ClusteringOptions options;
    options.target_clusters = hw_nodes;
    ClusterEngine engine(sw, options);
    try {
      const ClusteringResult result = engine.h1_greedy();
      table.add_row({std::to_string(n), std::to_string(sw.node_count()),
                     std::to_string(hw_nodes), "H1-greedy", "yes",
                     fmt(result.cross_cluster_influence(), 2),
                     std::to_string(engine.oracle_analyses())});
    } catch (const FcmError&) {
      table.add_row({std::to_string(n), std::to_string(sw.node_count()),
                     std::to_string(hw_nodes), "H1-greedy", "no", "-",
                     std::to_string(engine.oracle_analyses())});
    }
  }
  std::cout << table.render();
  std::cout << "\n(oracle analyses stay modest thanks to memoization; the "
               "quotient rebuild\n per merge dominates H1's cost at scale)\n";
}

void BM_H1AtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomSystem sys = make_system(n, 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = std::max<std::size_t>(4, n / 3);
    ClusterEngine engine(sw, options);
    try {
      benchmark::DoNotOptimize(engine.h1_greedy());
    } catch (const fcm::FcmError&) {
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sw.node_count()));
}
BENCHMARK(BM_H1AtScale)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CriticalityPairingAtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomSystem sys = make_system(n, 7);
  const SwGraph sw =
      SwGraph::build(sys.hierarchy, sys.influence, sys.processes);
  for (auto _ : state) {
    ClusteringOptions options;
    options.target_clusters = std::max<std::size_t>(4, n / 3);
    ClusterEngine engine(sw, options);
    try {
      benchmark::DoNotOptimize(engine.criticality_pairing());
    } catch (const fcm::FcmError&) {
    }
  }
}
BENCHMARK(BM_CriticalityPairingAtScale)->Arg(8)->Arg(32)->Arg(64);

void BM_SwGraphBuildAtScale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomSystem sys = make_system(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SwGraph::build(sys.hierarchy, sys.influence, sys.processes));
  }
}
BENCHMARK(BM_SwGraphBuildAtScale)->Arg(8)->Arg(64);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
