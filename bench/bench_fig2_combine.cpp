// Figure 2 — "Combining SW nodes": nodes 1..7, where combining nodes 1-4
// hides their internal influences and folds their separate influences on a
// common neighbor via Eq. 4 ("the influences of nodes 3 and 4 on node 5
// must be combined"). The benchmarks time quotient-graph construction.
#include "bench_util.h"
#include "common/rng.h"
#include "graph/quotient.h"

namespace {

using namespace fcm;
using namespace fcm::graph;

Digraph figure2_graph() {
  Digraph g;
  for (int i = 1; i <= 7; ++i) g.add_node(std::to_string(i));
  // Internal influences among the cluster-to-be {1,2,3,4}.
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2, 0.4);
  g.add_edge(2, 3, 0.3);
  g.add_edge(3, 0, 0.2);
  // Influences of cluster members on the common neighbor 5 (Eq. 4 case).
  g.add_edge(2, 4, 0.3);  // 3 -> 5
  g.add_edge(3, 4, 0.2);  // 4 -> 5
  // Influence on node 6 and from node 7.
  g.add_edge(1, 5, 0.25);  // 2 -> 6
  g.add_edge(6, 0, 0.15);  // 7 -> 1
  return g;
}

void print_reproduction() {
  bench::banner("Figure 2: Combining SW nodes 1..4 of a 7-node graph");
  const Digraph g = figure2_graph();
  std::cout << "before (" << g.edge_count() << " edges):\n";
  bench::print_edges(g);

  Partition partition = Partition::identity(7);
  partition.merge(0, 1);
  partition.merge(0, 2);
  partition.merge(0, 3);
  const Digraph q = quotient_graph(g, partition);

  std::cout << "\nafter combining {1,2,3,4} (" << q.edge_count()
            << " edges):\n";
  bench::print_edges(q);
  std::cout << "\ninternal influences disappeared; influence on node 5 "
               "combined via Eq. 4:\n  1-(1-0.3)(1-0.2) = "
            << 1.0 - 0.7 * 0.8 << '\n';
}

Digraph random_graph(std::size_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Digraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_node(std::to_string(i));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform() < density) {
        g.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(j),
                   rng.uniform(0.05, 0.95));
      }
    }
  }
  return g;
}

void BM_QuotientGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Digraph g = random_graph(n, 0.3, 42);
  Partition partition = Partition::identity(n);
  // Halve the node count by pairing consecutive nodes.
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    partition.merge(static_cast<NodeIndex>(i),
                    static_cast<NodeIndex>(i + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(quotient_graph(g, partition));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_QuotientGraph)->Arg(8)->Arg(32)->Arg(128);

void BM_PartitionMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Partition partition = Partition::identity(n);
    for (std::size_t i = 1; i < n; ++i) {
      partition.merge(0, static_cast<NodeIndex>(i));
    }
    benchmark::DoNotOptimize(partition);
  }
}
BENCHMARK(BM_PartitionMerge)->Arg(16)->Arg(256);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
