// Ablation — Monte Carlo dependability evaluation: convergence of the
// sampled TMR survival to the closed form 3r²-2r³, the throughput of the
// evaluator (the cost of scoring one candidate mapping), and the scaling of
// the sharded engine over worker threads (recorded to BENCH_montecarlo.json
// together with the bitwise-identity check).
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/montecarlo.h"
#include "dependability/reliability.h"
#include "mapping/assignment.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace {

using namespace fcm;
using namespace fcm::dependability;

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  mapping::SwGraph sw = mapping::SwGraph::build(
      instance.hierarchy, instance.influence, instance.processes);
  mapping::HwGraph hw = mapping::HwGraph::complete(6);
  mapping::ClusteringResult clustering;
  mapping::Assignment assignment;

  Setup() {
    mapping::ClusteringOptions options;
    options.target_clusters = 6;
    mapping::ClusterEngine engine(sw, options);
    clustering = engine.criticality_pairing();
    assignment = mapping::assign_by_importance(sw, clustering, hw);
  }
};

void print_reproduction() {
  bench::banner("Monte Carlo convergence to closed-form TMR reliability");
  Setup setup;
  const double q = 0.2;
  const double closed_form = tmr_reliability(1.0 - q);
  TextTable table({"trials", "sampled p1 survival", "closed form 3r^2-2r^3",
                   "abs error"});
  for (const std::uint32_t trials : {100u, 1000u, 10'000u, 100'000u}) {
    MissionModel mission;
    mission.hw_failure = Probability(q);
    mission.propagate = false;
    mission.trials = trials;
    const DependabilityReport report =
        evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                         setup.hw, mission, 2024);
    table.add_row({std::to_string(trials), fmt(report.process_survival[0], 5),
                   fmt(closed_form, 5),
                   fmt(std::fabs(report.process_survival[0] - closed_form),
                       5)});
  }
  std::cout << table.render();
  std::cout << "\n(error shrinks ~1/sqrt(trials): the sampler is unbiased "
               "against the\n closed form when propagation is off and "
               "replicas sit on distinct nodes)\n";
}

bool reports_identical(const DependabilityReport& a,
                       const DependabilityReport& b) {
  if (a.system_survival != b.system_survival ||
      a.critical_survival != b.critical_survival ||
      a.expected_criticality_loss != b.expected_criticality_loss) {
    return false;
  }
  return a.process_survival == b.process_survival;
}

void threads_scaling() {
  bench::banner("parallel Monte Carlo: thread scaling and determinism");
  Setup setup;
  MissionModel mission;
  mission.hw_failure = Probability(0.1);
  mission.sw_fault = Probability(0.02);
  mission.propagate = true;
  mission.trials = 400'000;

  const int repeat = bench::repeat();
  auto timed = [&](std::uint32_t threads) {
    mission.threads = threads;
    DependabilityReport report;
    const double seconds = bench::timed_median_seconds(repeat, [&] {
      report = evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                                setup.hw, mission, 2024);
    });
    return std::pair(seconds, std::move(report));
  };

  const DependabilityReport reference = timed(1).second;
  std::vector<std::pair<std::uint32_t, std::pair<double, bool>>> sweep;
  double base_seconds = 0.0;
  double seconds_4 = 0.0;
  bool all_identical = true;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const auto [seconds, report] = timed(threads);
    const bool identical = reports_identical(reference, report);
    all_identical = all_identical && identical;
    if (threads == 1) base_seconds = seconds;
    if (threads == 4) seconds_4 = seconds;
    sweep.emplace_back(threads, std::pair(seconds, identical));
  }

  TextTable table({"threads", "seconds", "speedup vs 1", "identical"});
  for (const auto& [threads, row] : sweep) {
    table.add_row({std::to_string(threads), fmt(row.first, 3),
                   fmt(base_seconds / row.first, 2),
                   row.second ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "(speedup needs real cores: "
            << std::thread::hardware_concurrency()
            << " hardware threads here; estimates are bitwise identical "
               "either way)\n";

  // Instrumented pass at a smaller trial count: the embedded snapshot
  // records how much work the engine actually did (trials, blocks,
  // propagation sweeps), which anchors the timing numbers above.
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  mission.threads = 4;
  mission.trials = 50'000;
  (void)evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                         setup.hw, mission, 2024);
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::global().snapshot();
  obs::set_enabled(false);

  std::ofstream json("BENCH_montecarlo.json");
  json << "{\n"
       << "  \"bench\": \"montecarlo_threads\",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"trials\": 400000,\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"seconds_1_thread\": " << base_seconds << ",\n"
       << "  \"seconds_4_threads\": " << seconds_4 << ",\n"
       << "  \"speedup_4_threads\": " << base_seconds / seconds_4 << ",\n"
       << "  \"bitwise_identical\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "  \"metrics\": " << obs::metrics_json(metrics) << "\n}\n";
  std::cout << "(speedup record written to BENCH_montecarlo.json)\n";
}

void BM_MonteCarloTrials(benchmark::State& state) {
  Setup setup;
  MissionModel mission;
  mission.hw_failure = Probability(0.1);
  mission.sw_fault = Probability(0.02);
  mission.trials = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                         setup.hw, mission, seed++));
  }
  state.SetItemsProcessed(state.iterations() * mission.trials);
}
BENCHMARK(BM_MonteCarloTrials)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_MonteCarloThreads(benchmark::State& state) {
  Setup setup;
  MissionModel mission;
  mission.hw_failure = Probability(0.1);
  mission.sw_fault = Probability(0.02);
  mission.propagate = true;
  mission.trials = 100'000;
  mission.threads = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                         setup.hw, mission, seed++));
  }
  state.SetItemsProcessed(state.iterations() * mission.trials);
}
BENCHMARK(BM_MonteCarloThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ClosedForms(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmr_reliability(0.9));
    benchmark::DoNotOptimize(nmr_reliability(0.9, 5));
    benchmark::DoNotOptimize(replicated_process_reliability(0.9, 2));
  }
}
BENCHMARK(BM_ClosedForms);

void print_all() {
  print_reproduction();
  threads_scaling();
}

}  // namespace

FCM_BENCH_MAIN(print_all)
