// Ablation — Monte Carlo dependability evaluation: convergence of the
// sampled TMR survival to the closed form 3r²-2r³, and the throughput of
// the evaluator (the cost of scoring one candidate mapping).
#include <cmath>

#include "bench_util.h"
#include "common/table.h"
#include "core/example98.h"
#include "dependability/montecarlo.h"
#include "dependability/reliability.h"
#include "mapping/assignment.h"

namespace {

using namespace fcm;
using namespace fcm::dependability;

struct Setup {
  core::example98::Instance instance = core::example98::make_instance();
  mapping::SwGraph sw = mapping::SwGraph::build(
      instance.hierarchy, instance.influence, instance.processes);
  mapping::HwGraph hw = mapping::HwGraph::complete(6);
  mapping::ClusteringResult clustering;
  mapping::Assignment assignment;

  Setup() {
    mapping::ClusteringOptions options;
    options.target_clusters = 6;
    mapping::ClusterEngine engine(sw, options);
    clustering = engine.criticality_pairing();
    assignment = mapping::assign_by_importance(sw, clustering, hw);
  }
};

void print_reproduction() {
  bench::banner("Monte Carlo convergence to closed-form TMR reliability");
  Setup setup;
  const double q = 0.2;
  const double closed_form = tmr_reliability(1.0 - q);
  TextTable table({"trials", "sampled p1 survival", "closed form 3r^2-2r^3",
                   "abs error"});
  for (const std::uint32_t trials : {100u, 1000u, 10'000u, 100'000u}) {
    MissionModel mission;
    mission.hw_failure = Probability(q);
    mission.propagate = false;
    mission.trials = trials;
    const DependabilityReport report =
        evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                         setup.hw, mission, 2024);
    table.add_row({std::to_string(trials), fmt(report.process_survival[0], 5),
                   fmt(closed_form, 5),
                   fmt(std::fabs(report.process_survival[0] - closed_form),
                       5)});
  }
  std::cout << table.render();
  std::cout << "\n(error shrinks ~1/sqrt(trials): the sampler is unbiased "
               "against the\n closed form when propagation is off and "
               "replicas sit on distinct nodes)\n";
}

void BM_MonteCarloTrials(benchmark::State& state) {
  Setup setup;
  MissionModel mission;
  mission.hw_failure = Probability(0.1);
  mission.sw_fault = Probability(0.02);
  mission.trials = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_mapping(setup.sw, setup.clustering, setup.assignment,
                         setup.hw, mission, seed++));
  }
  state.SetItemsProcessed(state.iterations() * mission.trials);
}
BENCHMARK(BM_MonteCarloTrials)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_ClosedForms(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmr_reliability(0.9));
    benchmark::DoNotOptimize(nmr_reliability(0.9, 5));
    benchmark::DoNotOptimize(replicated_process_reliability(0.9, 2));
  }
}
BENCHMARK(BM_ClosedForms);

}  // namespace

FCM_BENCH_MAIN(print_reproduction)
